#include "image/image2d.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hifi
{
namespace image
{

Image2D::Image2D(size_t width, size_t height, float fill)
    : width_(width), height_(height),
      data_(width * height, fill)
{
    if (width == 0 || height == 0)
        throw std::invalid_argument("Image2D: zero dimension");
}

float
Image2D::clampedAt(long x, long y) const
{
    const long mx = static_cast<long>(width_) - 1;
    const long my = static_cast<long>(height_) - 1;
    x = std::clamp(x, 0l, mx);
    y = std::clamp(y, 0l, my);
    return data_[static_cast<size_t>(y) * width_ + static_cast<size_t>(x)];
}

void
Image2D::fill(float value)
{
    std::fill(data_.begin(), data_.end(), value);
}

void
Image2D::fillRect(long x0, long y0, long x1, long y1, float value)
{
    const long w = static_cast<long>(width_);
    const long h = static_cast<long>(height_);
    x0 = std::clamp(x0, 0l, w);
    x1 = std::clamp(x1, 0l, w);
    y0 = std::clamp(y0, 0l, h);
    y1 = std::clamp(y1, 0l, h);
    for (long y = y0; y < y1; ++y)
        for (long x = x0; x < x1; ++x)
            data_[static_cast<size_t>(y) * width_ +
                  static_cast<size_t>(x)] = value;
}

float
Image2D::minValue() const
{
    return data_.empty() ? 0.0f :
        *std::min_element(data_.begin(), data_.end());
}

float
Image2D::maxValue() const
{
    return data_.empty() ? 0.0f :
        *std::max_element(data_.begin(), data_.end());
}

float
Image2D::meanValue() const
{
    if (data_.empty())
        return 0.0f;
    double sum = 0.0;
    for (float v : data_)
        sum += v;
    return static_cast<float>(sum / static_cast<double>(data_.size()));
}

void
Image2D::clamp(float lo, float hi)
{
    for (float &v : data_)
        v = std::clamp(v, lo, hi);
}

double
Image2D::totalVariation() const
{
    double tv = 0.0;
    for (size_t y = 0; y < height_; ++y) {
        for (size_t x = 0; x < width_; ++x) {
            const float v = at(x, y);
            if (x + 1 < width_)
                tv += std::abs(at(x + 1, y) - v);
            if (y + 1 < height_)
                tv += std::abs(at(x, y + 1) - v);
        }
    }
    return tv;
}

double
Image2D::mse(const Image2D &other) const
{
    if (other.width_ != width_ || other.height_ != height_)
        throw std::invalid_argument("Image2D::mse: shape mismatch");
    if (data_.empty())
        return 0.0;
    double sum = 0.0;
    for (size_t i = 0; i < data_.size(); ++i) {
        const double d = data_[i] - other.data_[i];
        sum += d * d;
    }
    return sum / static_cast<double>(data_.size());
}

double
Image2D::psnr(const Image2D &other) const
{
    const double e = mse(other);
    if (e <= 0.0)
        return 1e9; // identical images: "infinite" PSNR sentinel
    return 10.0 * std::log10(1.0 / e);
}

Image2D
Image2D::shifted(long dx, long dy) const
{
    Image2D out(width_, height_);
    for (size_t y = 0; y < height_; ++y)
        for (size_t x = 0; x < width_; ++x)
            out.at(x, y) = clampedAt(static_cast<long>(x) - dx,
                                     static_cast<long>(y) - dy);
    return out;
}

Image2D
Image2D::crop(size_t x0, size_t y0, size_t x1, size_t y1) const
{
    if (x1 <= x0 || y1 <= y0 || x1 > width_ || y1 > height_)
        throw std::invalid_argument("Image2D::crop: bad bounds");
    Image2D out(x1 - x0, y1 - y0);
    for (size_t y = y0; y < y1; ++y)
        for (size_t x = x0; x < x1; ++x)
            out.at(x - x0, y - y0) = at(x, y);
    return out;
}

} // namespace image
} // namespace hifi
