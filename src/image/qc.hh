/**
 * @file
 * Per-slice image quality control for FIB/SEM acquisition.
 *
 * Real campaigns are dominated by imaging pathologies (curtaining,
 * charging, focus loss, detector dropout, stage excursions — §IV-B/C
 * of the paper), so the acquisition loop needs an online detector that
 * decides, slice by slice, whether a frame is usable or must be
 * re-imaged.  The metrics here are all reference-free or
 * neighbour-relative: a real microscope has no clean ground truth.
 *
 *  - SNR estimate: scene variance over noise variance, with the noise
 *    sigma estimated from the median absolute Laplacian (immune to the
 *    scene's own edges).
 *  - Focus score: mean squared gradient (Tenengrad); defocus is
 *    detected *relative* to the recent history median, since the
 *    absolute value depends on the scene.
 *  - Saturation fraction: pixels at or above the detector rail;
 *    charging blooms push whole regions there.
 *  - Dead-row fraction: constant rows, the signature of detector
 *    dropout (a fully blank frame scores 1.0 and also fails SNR).
 *  - Stripe score: low-frequency column-mean modulation (curtaining);
 *    flagged on the *differential* profile vs the previous accepted
 *    slice, aligned by the recovered neighbour shift, so the scene's
 *    own vertical structure — and its drift — cancels out.
 *  - MI vs previous slice + recovered shift: slice skips collapse the
 *    mutual information; drift excursions show up as a neighbour shift
 *    beyond the instrument's re-registration bound.
 *
 * All functions are deterministic and, through the parallel kernels
 * they call, thread-count invariant.
 */

#ifndef HIFI_IMAGE_QC_HH
#define HIFI_IMAGE_QC_HH

#include <cstddef>
#include <vector>

#include "image/image2d.hh"

namespace hifi
{
namespace image
{

/** Decision thresholds for the QC detector. */
struct QcThresholds
{
    /// Minimum estimated SNR (scene variance / noise variance).
    double minSnr = 0.8;

    /// Intensity at/above which a pixel counts as saturated.
    double saturationLevel = 1.05;

    /// Maximum tolerated saturated-pixel fraction.
    double maxSaturationFraction = 0.01;

    /// Maximum tolerated fraction of constant (dead) rows.
    double maxDeadRowFraction = 0.02;

    /// Maximum differential stripe score vs the previous accepted
    /// slice (absolute threshold is 4x this when no history exists).
    double maxStripeScore = 0.02;

    /// Defocus: focus score below this fraction of the history median.
    double minFocusRatio = 0.45;

    /// Content break: MI below this fraction of the history median.
    double minMiRatio = 0.55;

    /// Largest credible per-slice neighbour shift (px, per axis).
    long maxNeighborShiftPx = 3;

    /// Half-width of the neighbour shift search (px).
    long shiftSearchPx = 8;

    /// Histogram bins for the MI computations.
    size_t miBins = 16;

    /// Accepted-slice history window for the relative thresholds.
    size_t history = 5;
};

/// Which QC checks fired; OR-ed into QcMetrics::flags.
enum QcFlag : unsigned
{
    kQcLowSnr = 1u << 0,
    kQcSaturation = 1u << 1,
    kQcDeadRows = 1u << 2,
    kQcStripes = 1u << 3,
    kQcDefocus = 1u << 4,
    kQcLowMi = 1u << 5,
    kQcShift = 1u << 6,
};

/** Per-slice QC measurements plus the fired-check bitmask. */
struct QcMetrics
{
    double snr = 0.0;
    double focusScore = 0.0;
    double saturationFraction = 0.0;
    double deadRowFraction = 0.0;
    double stripeScore = 0.0;

    /// MI vs the previous accepted slice; -1 when no reference exists.
    double miVsPrev = -1.0;

    /// Recovered shift vs the previous accepted slice (MI search).
    long shiftX = 0;
    long shiftY = 0;

    unsigned flags = 0;
    bool flagged() const { return flags != 0; }
};

/// Noise sigma estimate from the median absolute interior Laplacian.
double estimateNoiseSigma(const Image2D &img);

/// Mean squared gradient (Tenengrad focus measure).
double gradientEnergy(const Image2D &img);

/// Fraction of pixels with intensity >= level.
double saturationFraction(const Image2D &img, double level);

/// Fraction of rows whose intensity range is (numerically) zero.
double deadRowFraction(const Image2D &img);

/**
 * Low-frequency column-mean modulation: the RMS deviation of the
 * moving-average-smoothed column-mean profile from its mean.  High for
 * curtaining stripes, low for scenes whose vertical structure is
 * higher-frequency than width/8.
 */
double stripeScore(const Image2D &img);

/// Smoothed column-mean profile used by stripeScore (for diffing).
std::vector<double> smoothedColumnProfile(const Image2D &img);

/// RMS of the mean-removed difference between two column profiles
/// (0 when the sizes differ or the profiles are empty).
double profileDifferenceRms(const std::vector<double> &a,
                            const std::vector<double> &b);

/// Intrinsic (reference-free) metrics with their absolute flags set.
QcMetrics computeQcMetrics(const Image2D &img,
                           const QcThresholds &t = {});

/**
 * Stateful online detector: evaluates each candidate slice against the
 * absolute thresholds and against a short history of *accepted*
 * slices (focus/MI medians, previous-slice stripe profile and shift).
 * The caller decides acceptance and feeds accepted slices back via
 * accept(); rejected attempts never pollute the baselines.
 */
class QcMonitor
{
  public:
    explicit QcMonitor(QcThresholds thresholds = {});

    /// Evaluate a candidate slice (does not update the history).
    QcMetrics evaluate(const Image2D &slice) const;

    /// Commit an accepted slice (and its metrics) to the history.
    void accept(const Image2D &slice, const QcMetrics &metrics);

    /**
     * Record that a whole slice was given up on (no attempt accepted).
     * Widens the credible-shift bound by one pixel per rejected slice:
     * the scene legitimately advances between the stale reference and
     * the next candidate, and without this allowance one bad slice
     * would cascade shift rejections through a laterally moving scene.
     */
    void noteRejected();

    bool hasReference() const { return hasPrev_; }
    const QcThresholds &thresholds() const { return thresholds_; }

  private:
    QcThresholds thresholds_;
    Image2D prev_;
    std::vector<double> prevProfile_;
    bool hasPrev_ = false;
    size_t gapSinceAccept_ = 0;
    std::vector<double> focusHistory_;
    std::vector<double> miHistory_;
};

} // namespace image
} // namespace hifi

#endif // HIFI_IMAGE_QC_HH
