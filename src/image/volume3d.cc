#include "image/volume3d.hh"

#include <stdexcept>
#include <string>

namespace hifi
{
namespace image
{

Volume3D::Volume3D(size_t nx, size_t ny, size_t nz, float fill)
    : nx_(nx), ny_(ny), nz_(nz), data_(nx * ny * nz, fill)
{
    if (nx == 0 || ny == 0 || nz == 0)
        throw std::invalid_argument("Volume3D: zero dimension");
}

common::Result<Volume3D>
Volume3D::createChecked(size_t nx, size_t ny, size_t nz, float fill)
{
    using R = common::Result<Volume3D>;
    if (nx == 0 || ny == 0 || nz == 0)
        return R::failure(common::ErrorCode::InvalidArgument,
                          "Volume3D: zero dimension (" +
                              std::to_string(nx) + " x " +
                              std::to_string(ny) + " x " +
                              std::to_string(nz) + ")");
    return R(Volume3D(nx, ny, nz, fill));
}

Image2D
Volume3D::crossSection(size_t x) const
{
    if (x >= nx_)
        throw std::out_of_range("Volume3D::crossSection");
    Image2D img(ny_, nz_);
    for (size_t z = 0; z < nz_; ++z)
        for (size_t y = 0; y < ny_; ++y)
            img.at(y, z) = at(x, y, z);
    return img;
}

Image2D
Volume3D::planarView(size_t z) const
{
    if (z >= nz_)
        throw std::out_of_range("Volume3D::planarView");
    Image2D img(nx_, ny_);
    for (size_t y = 0; y < ny_; ++y)
        for (size_t x = 0; x < nx_; ++x)
            img.at(x, y) = at(x, y, z);
    return img;
}

common::Result<Image2D>
Volume3D::crossSectionChecked(size_t x) const
{
    using R = common::Result<Image2D>;
    if (x >= nx_)
        return R::failure(common::ErrorCode::InvalidArgument,
                          "Volume3D::crossSection: x=" +
                              std::to_string(x) + " outside nx=" +
                              std::to_string(nx_));
    return R(crossSection(x));
}

common::Result<Image2D>
Volume3D::planarViewChecked(size_t z) const
{
    using R = common::Result<Image2D>;
    if (z >= nz_)
        return R::failure(common::ErrorCode::InvalidArgument,
                          "Volume3D::planarView: z=" +
                              std::to_string(z) + " outside nz=" +
                              std::to_string(nz_));
    return R(planarView(z));
}

void
Volume3D::setCrossSection(size_t x, const Image2D &img)
{
    if (x >= nx_ || img.width() != ny_ || img.height() != nz_)
        throw std::invalid_argument("Volume3D::setCrossSection: shape");
    for (size_t z = 0; z < nz_; ++z)
        for (size_t y = 0; y < ny_; ++y)
            at(x, y, z) = img.at(y, z);
}

Image2D
Volume3D::planarSlab(size_t z0, size_t z1) const
{
    if (z1 <= z0 || z1 > nz_)
        throw std::invalid_argument("Volume3D::planarSlab: bad range");
    Image2D img(nx_, ny_, 0.0f);
    for (size_t z = z0; z < z1; ++z)
        for (size_t y = 0; y < ny_; ++y)
            for (size_t x = 0; x < nx_; ++x)
                img.at(x, y) += at(x, y, z);
    const float k = 1.0f / static_cast<float>(z1 - z0);
    for (float &v : img.data())
        v *= k;
    return img;
}

common::Result<Image2D>
Volume3D::planarSlabChecked(size_t z0, size_t z1) const
{
    using R = common::Result<Image2D>;
    if (z1 <= z0 || z1 > nz_)
        return R::failure(common::ErrorCode::InvalidArgument,
                          "Volume3D::planarSlab: bad range [" +
                              std::to_string(z0) + ", " +
                              std::to_string(z1) + ") over nz=" +
                              std::to_string(nz_));
    return R(planarSlab(z0, z1));
}

Volume3D
assembleVolume(const std::vector<Image2D> &slices,
               const std::vector<std::pair<long, long>> &shifts)
{
    if (slices.empty())
        throw std::invalid_argument("assembleVolume: no slices");
    if (shifts.size() != slices.size())
        throw std::invalid_argument("assembleVolume: shift count");
    const size_t ny = slices[0].width();
    const size_t nz = slices[0].height();
    Volume3D vol(slices.size(), ny, nz);
    for (size_t i = 0; i < slices.size(); ++i) {
        const Image2D corrected =
            slices[i].shifted(-shifts[i].first, -shifts[i].second);
        vol.setCrossSection(i, corrected);
    }
    return vol;
}

} // namespace image
} // namespace hifi
