#include "image/volume3d.hh"

#include <stdexcept>

namespace hifi
{
namespace image
{

Volume3D::Volume3D(size_t nx, size_t ny, size_t nz, float fill)
    : nx_(nx), ny_(ny), nz_(nz), data_(nx * ny * nz, fill)
{
    if (nx == 0 || ny == 0 || nz == 0)
        throw std::invalid_argument("Volume3D: zero dimension");
}

Image2D
Volume3D::crossSection(size_t x) const
{
    if (x >= nx_)
        throw std::out_of_range("Volume3D::crossSection");
    Image2D img(ny_, nz_);
    for (size_t z = 0; z < nz_; ++z)
        for (size_t y = 0; y < ny_; ++y)
            img.at(y, z) = at(x, y, z);
    return img;
}

Image2D
Volume3D::planarView(size_t z) const
{
    if (z >= nz_)
        throw std::out_of_range("Volume3D::planarView");
    Image2D img(nx_, ny_);
    for (size_t y = 0; y < ny_; ++y)
        for (size_t x = 0; x < nx_; ++x)
            img.at(x, y) = at(x, y, z);
    return img;
}

void
Volume3D::setCrossSection(size_t x, const Image2D &img)
{
    if (x >= nx_ || img.width() != ny_ || img.height() != nz_)
        throw std::invalid_argument("Volume3D::setCrossSection: shape");
    for (size_t z = 0; z < nz_; ++z)
        for (size_t y = 0; y < ny_; ++y)
            at(x, y, z) = img.at(y, z);
}

Image2D
Volume3D::planarSlab(size_t z0, size_t z1) const
{
    if (z1 <= z0 || z1 > nz_)
        throw std::invalid_argument("Volume3D::planarSlab: bad range");
    Image2D img(nx_, ny_, 0.0f);
    for (size_t z = z0; z < z1; ++z)
        for (size_t y = 0; y < ny_; ++y)
            for (size_t x = 0; x < nx_; ++x)
                img.at(x, y) += at(x, y, z);
    const float k = 1.0f / static_cast<float>(z1 - z0);
    for (float &v : img.data())
        v *= k;
    return img;
}

Volume3D
assembleVolume(const std::vector<Image2D> &slices,
               const std::vector<std::pair<long, long>> &shifts)
{
    if (slices.empty())
        throw std::invalid_argument("assembleVolume: no slices");
    if (shifts.size() != slices.size())
        throw std::invalid_argument("assembleVolume: shift count");
    const size_t ny = slices[0].width();
    const size_t nz = slices[0].height();
    Volume3D vol(slices.size(), ny, nz);
    for (size_t i = 0; i < slices.size(); ++i) {
        const Image2D corrected =
            slices[i].shifted(-shifts[i].first, -shifts[i].second);
        vol.setCrossSection(i, corrected);
    }
    return vol;
}

} // namespace image
} // namespace hifi
