#include "image/qc.hh"

#include <algorithm>
#include <cmath>

#include "common/stats.hh"
#include "image/registration.hh"

namespace hifi
{
namespace image
{

namespace
{

/// 1.4826 * MAD -> sigma for a Gaussian; the Laplacian kernel
/// [0,1,0;1,-4,1;0,1,0] has an L2 norm of sqrt(20).
constexpr double kMadToSigma = 1.4826;
constexpr double kLaplacianNorm = 4.47213595499957939; // sqrt(20)

std::vector<double>
columnMeans(const Image2D &img)
{
    std::vector<double> means(img.width(), 0.0);
    for (size_t y = 0; y < img.height(); ++y)
        for (size_t x = 0; x < img.width(); ++x)
            means[x] += img.at(x, y);
    const double inv_h = img.height()
        ? 1.0 / static_cast<double>(img.height())
        : 0.0;
    for (double &m : means)
        m *= inv_h;
    return means;
}

double
profileRms(const std::vector<double> &profile)
{
    if (profile.empty())
        return 0.0;
    double mean = 0.0;
    for (double v : profile)
        mean += v;
    mean /= static_cast<double>(profile.size());
    double var = 0.0;
    for (double v : profile) {
        const double d = v - mean;
        var += d * d;
    }
    return std::sqrt(var / static_cast<double>(profile.size()));
}

} // namespace

double
estimateNoiseSigma(const Image2D &img)
{
    if (img.width() < 3 || img.height() < 3)
        return 0.0;
    std::vector<double> lap;
    lap.reserve((img.width() - 2) * (img.height() - 2));
    for (size_t y = 1; y + 1 < img.height(); ++y) {
        for (size_t x = 1; x + 1 < img.width(); ++x) {
            const double l = img.at(x - 1, y) + img.at(x + 1, y) +
                img.at(x, y - 1) + img.at(x, y + 1) -
                4.0 * img.at(x, y);
            lap.push_back(std::abs(l));
        }
    }
    return kMadToSigma * common::median(std::move(lap)) /
        kLaplacianNorm;
}

double
gradientEnergy(const Image2D &img)
{
    if (img.width() < 2 || img.height() < 2)
        return 0.0;
    double sum = 0.0;
    size_t n = 0;
    for (size_t y = 0; y + 1 < img.height(); ++y) {
        for (size_t x = 0; x + 1 < img.width(); ++x) {
            const double gx = img.at(x + 1, y) - img.at(x, y);
            const double gy = img.at(x, y + 1) - img.at(x, y);
            sum += gx * gx + gy * gy;
            ++n;
        }
    }
    return n ? sum / static_cast<double>(n) : 0.0;
}

double
saturationFraction(const Image2D &img, double level)
{
    if (img.empty())
        return 0.0;
    size_t sat = 0;
    for (float v : img.data())
        if (static_cast<double>(v) >= level)
            ++sat;
    return static_cast<double>(sat) /
        static_cast<double>(img.size());
}

double
deadRowFraction(const Image2D &img)
{
    if (img.empty())
        return 0.0;
    size_t dead = 0;
    for (size_t y = 0; y < img.height(); ++y) {
        float lo = img.at(0, y), hi = lo;
        for (size_t x = 1; x < img.width(); ++x) {
            lo = std::min(lo, img.at(x, y));
            hi = std::max(hi, img.at(x, y));
        }
        if (hi - lo < 1e-7f)
            ++dead;
    }
    return static_cast<double>(dead) /
        static_cast<double>(img.height());
}

std::vector<double>
smoothedColumnProfile(const Image2D &img)
{
    const std::vector<double> means = columnMeans(img);
    const size_t w = means.size();
    const size_t window = std::max<size_t>(3, w / 8);
    const long half = static_cast<long>(window / 2);
    std::vector<double> smooth(w, 0.0);
    for (size_t x = 0; x < w; ++x) {
        double sum = 0.0;
        size_t n = 0;
        for (long d = -half; d <= half; ++d) {
            const long xx = static_cast<long>(x) + d;
            if (xx < 0 || xx >= static_cast<long>(w))
                continue;
            sum += means[static_cast<size_t>(xx)];
            ++n;
        }
        smooth[x] = n ? sum / static_cast<double>(n) : 0.0;
    }
    return smooth;
}

double
stripeScore(const Image2D &img)
{
    return profileRms(smoothedColumnProfile(img));
}

double
profileDifferenceRms(const std::vector<double> &a,
                     const std::vector<double> &b)
{
    if (a.size() != b.size() || a.empty())
        return 0.0;
    std::vector<double> diff(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        diff[i] = a[i] - b[i];
    return profileRms(diff);
}

QcMetrics
computeQcMetrics(const Image2D &img, const QcThresholds &t)
{
    QcMetrics m;
    if (img.empty()) {
        m.flags |= kQcLowSnr;
        return m;
    }

    const double sigma = estimateNoiseSigma(img);
    const double mean = img.meanValue();
    double var = 0.0;
    for (float v : img.data()) {
        const double d = v - mean;
        var += d * d;
    }
    var /= static_cast<double>(img.size());
    const double noise_var = sigma * sigma;
    m.snr = noise_var > 1e-12
        ? std::max(0.0, var - noise_var) / noise_var
        : (var > 1e-12 ? 1e6 : 0.0);

    m.focusScore = gradientEnergy(img);
    m.saturationFraction = saturationFraction(img, t.saturationLevel);
    m.deadRowFraction = deadRowFraction(img);
    m.stripeScore = stripeScore(img);

    if (m.snr < t.minSnr)
        m.flags |= kQcLowSnr;
    if (m.saturationFraction > t.maxSaturationFraction)
        m.flags |= kQcSaturation;
    if (m.deadRowFraction > t.maxDeadRowFraction)
        m.flags |= kQcDeadRows;
    return m;
}

QcMonitor::QcMonitor(QcThresholds thresholds)
    : thresholds_(thresholds)
{
}

QcMetrics
QcMonitor::evaluate(const Image2D &slice) const
{
    QcMetrics m = computeQcMetrics(slice, thresholds_);

    // Neighbour consistency first: the recovered shift also aligns the
    // stripe differential below, so ordinary stage drift between
    // consecutive slices does not masquerade as curtaining.
    bool aligned_stripes = false;
    if (hasPrev_ && prev_.width() == slice.width() &&
        prev_.height() == slice.height()) {
        MiParams mi;
        mi.bins = thresholds_.miBins;
        mi.maxShift = thresholds_.shiftSearchPx;
        const auto shift = registerShiftMi(prev_, slice, mi);
        m.shiftX = shift.first;
        m.shiftY = shift.second;
        const Image2D aligned =
            slice.shifted(shift.first, shift.second);
        m.miVsPrev =
            mutualInformation(prev_, aligned, thresholds_.miBins);
        // The reference goes stale by one slice per rejected slice;
        // allow the credible shift to grow by one pixel of scene
        // motion per gap slice.  (Growing it faster also covers
        // coincident drift steps, but widens the bound enough for a
        // minimum-magnitude excursion to slip through — a false flag
        // here only costs a re-image, a missed excursion poisons the
        // reference.)
        const long max_shift = thresholds_.maxNeighborShiftPx +
            static_cast<long>(gapSinceAccept_);
        if (std::labs(m.shiftX) > max_shift ||
            std::labs(m.shiftY) > max_shift)
            m.flags |= kQcShift;
        if (!miHistory_.empty()) {
            const double med = common::median(miHistory_);
            if (med > 0.0 &&
                m.miVsPrev < thresholds_.minMiRatio * med)
                m.flags |= kQcLowMi;
        }

        // Curtaining: differential low-frequency column profile vs the
        // previous accepted slice, on the aligned overlap so the
        // scene's own structure (and its drift) cancels.  Columns
        // invalidated by the x-shift and the smoothing half-window are
        // trimmed from the comparison.
        const std::vector<double> profile =
            smoothedColumnProfile(aligned);
        const size_t w = profile.size();
        const size_t margin =
            std::max<size_t>(3, w / 8) / 2 +
            static_cast<size_t>(std::labs(shift.first));
        if (w == prevProfile_.size() && w > 2 * margin + 4) {
            std::vector<double> diff;
            diff.reserve(w - 2 * margin);
            for (size_t i = margin; i + margin < w; ++i)
                diff.push_back(profile[i] - prevProfile_[i]);
            if (profileRms(diff) > thresholds_.maxStripeScore)
                m.flags |= kQcStripes;
            aligned_stripes = true;
        }
    }
    if (!aligned_stripes &&
        m.stripeScore > 4.0 * thresholds_.maxStripeScore)
        m.flags |= kQcStripes;

    // Defocus relative to the accepted-history median.
    if (!focusHistory_.empty()) {
        const double med = common::median(focusHistory_);
        if (med > 0.0 &&
            m.focusScore < thresholds_.minFocusRatio * med)
            m.flags |= kQcDefocus;
    }
    return m;
}

void
QcMonitor::accept(const Image2D &slice, const QcMetrics &metrics)
{
    prev_ = slice;
    prevProfile_ = smoothedColumnProfile(slice);
    hasPrev_ = true;
    gapSinceAccept_ = 0;

    auto push = [this](std::vector<double> &hist, double v) {
        hist.push_back(v);
        if (hist.size() > thresholds_.history)
            hist.erase(hist.begin());
    };
    push(focusHistory_, metrics.focusScore);
    if (metrics.miVsPrev >= 0.0)
        push(miHistory_, metrics.miVsPrev);
}

void
QcMonitor::noteRejected()
{
    ++gapSinceAccept_;
}

} // namespace image
} // namespace hifi
