/**
 * @file
 * 2-D grayscale image container used by the microscope simulator and the
 * post-processing pipeline (Section IV of the paper).
 *
 * Pixels are stored as floats in row-major order; intensity is nominally
 * in [0, 1] but intermediate processing may exceed that range.
 */

#ifndef HIFI_IMAGE_IMAGE2D_HH
#define HIFI_IMAGE_IMAGE2D_HH

#include <cstddef>
#include <vector>

namespace hifi
{
namespace image
{

/** Row-major float image. (x, y) with x the column index. */
class Image2D
{
  public:
    Image2D() = default;
    Image2D(size_t width, size_t height, float fill = 0.0f);

    size_t width() const { return width_; }
    size_t height() const { return height_; }
    size_t size() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    float &at(size_t x, size_t y) { return data_[y * width_ + x]; }
    float at(size_t x, size_t y) const { return data_[y * width_ + x]; }

    /// Direct pointer to the first pixel of row y (row-major layout).
    float *row(size_t y) { return data_.data() + y * width_; }
    const float *row(size_t y) const { return data_.data() + y * width_; }

    /// Clamped access: coordinates outside the image clamp to the edge.
    float clampedAt(long x, long y) const;

    std::vector<float> &data() { return data_; }
    const std::vector<float> &data() const { return data_; }

    void fill(float value);

    /// Set every pixel inside the (clipped) rectangle.
    void fillRect(long x0, long y0, long x1, long y1, float value);

    float minValue() const;
    float maxValue() const;
    float meanValue() const;

    /// Clamp all pixels into [lo, hi].
    void clamp(float lo, float hi);

    /// Anisotropic total variation: sum |dx| + |dy|.
    double totalVariation() const;

    /// Mean squared error against another image of identical shape.
    double mse(const Image2D &other) const;

    /// Peak signal-to-noise ratio in dB (peak = 1.0).
    double psnr(const Image2D &other) const;

    /// Image translated by integer (dx, dy); edge pixels replicate.
    Image2D shifted(long dx, long dy) const;

    /// Sub-image [x0,x1) x [y0,y1); throws on bad bounds.
    Image2D crop(size_t x0, size_t y0, size_t x1, size_t y1) const;

  private:
    size_t width_ = 0;
    size_t height_ = 0;
    std::vector<float> data_;
};

} // namespace image
} // namespace hifi

#endif // HIFI_IMAGE_IMAGE2D_HH
