/**
 * @file
 * Content-addressed, spill-to-disk store of float tiles — the storage
 * substrate of the out-of-core volume path (image/tiled_volume.hh).
 *
 * A tile is an immutable vector<float> addressed by the FNV-1a digest
 * of its bytes.  The store keeps a bounded LRU of resident tiles and
 * writes every sealed tile through to `<dir>/<digest>.tile`
 * (atomically: temp file + rename), so evicting a resident tile never
 * loses data and a reload verifies the content digest — truncation or
 * bit rot surfaces as a typed DataLoss, never as silent corruption.
 *
 * Pinning: fetch() returns a TileRef that pins the tile resident for
 * its lifetime; pinned tiles are never evicted, and a working set of
 * pins that alone exceeds the budget is a typed ResourceExhausted
 * (the caller's tiling is too coarse for its budget — growing the LRU
 * past the budget instead would silently void the RSS bound).
 *
 * Content addressing is what makes checkpoints cheap: a re-save of an
 * unchanged volume re-puts the same digests and the store skips the
 * disk writes entirely.
 *
 * Thread-safe.  Counters: "volume.tile.hit" / ".miss" / ".evicted" /
 * ".spilled_bytes" (mirrored in the always-on stats() so benches work
 * with telemetry off).
 */

#ifndef HIFI_IMAGE_TILE_STORE_HH
#define HIFI_IMAGE_TILE_STORE_HH

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.hh"

namespace hifi
{
namespace image
{

class TileStore;

/**
 * Shared handle to a resident tile.  While any TileRef to a digest is
 * alive the tile is pinned: it stays resident and counts against the
 * store's budget as pinned bytes.  Copyable; the pin drops when the
 * last copy dies.
 */
class TileRef
{
  public:
    TileRef() = default;

    const std::vector<float> &operator*() const { return *data_; }
    const std::vector<float> *operator->() const { return data_.get(); }
    const float *floats() const { return data_->data(); }
    size_t size() const { return data_ ? data_->size() : 0; }
    bool valid() const { return data_ != nullptr; }
    uint64_t digest() const { return digest_; }

  private:
    friend class TileStore;
    struct Pin; ///< RAII pin-count holder (defined in tile_store.cc)

    std::shared_ptr<const std::vector<float>> data_;
    std::shared_ptr<Pin> pin_;
    uint64_t digest_ = 0;
};

/** TileStore configuration. */
struct TileStoreConfig
{
    /**
     * Spill directory (created on demand).  Empty disables the disk
     * tier: tiles then live in memory only, and an over-budget store
     * that would need to evict fails with ResourceExhausted instead.
     */
    std::string dir;

    /**
     * Resident budget in bytes (pinned + LRU tile payloads).
     * 0 = unbounded (no eviction).  Tiles are spilled through to disk
     * on put() either way when `dir` is set.
     */
    size_t budgetBytes = 0;

    /// Skip the disk write when the tile file already exists (content
    /// addressing makes this safe); disable to force rewrites.
    bool reuseExistingFiles = true;
};

/** Lifetime totals (always on, unlike the telemetry counters). */
struct TileStoreStats
{
    uint64_t hits = 0;         ///< fetch served from the resident LRU
    uint64_t misses = 0;       ///< fetch that had to read the disk tier
    uint64_t evictions = 0;    ///< resident tiles dropped under pressure
    uint64_t spilledBytes = 0; ///< bytes written to the disk tier
};

/** Content-addressed tile store with a bounded resident LRU. */
class TileStore
{
  public:
    explicit TileStore(TileStoreConfig config);
    ~TileStore(); ///< out of line: Entry is incomplete here

    TileStore(const TileStore &) = delete;
    TileStore &operator=(const TileStore &) = delete;

    /**
     * Seal a tile: digest the payload, write it through to the disk
     * tier (atomic temp + rename; skipped when the content-addressed
     * file already exists), keep it resident, and evict LRU tiles
     * beyond the budget.  Returns the tile digest.  Typed failures:
     * Internal for I/O errors, ResourceExhausted when the budget
     * cannot be met (no disk tier, or pins alone exceed it).
     */
    common::Result<uint64_t> put(std::vector<float> data);

    /**
     * Pin and return the tile for `digest` — from the resident LRU on
     * a hit, re-read and digest-verified from the disk tier on a
     * miss.  Typed failures: NotFound for an unknown digest, DataLoss
     * for a truncated or corrupted tile file, ResourceExhausted when
     * pinning it would exceed the budget.
     */
    common::Result<TileRef> fetch(uint64_t digest);

    /// Whether the store can currently serve `digest` (resident or on
    /// disk; the disk check is existence-only, not a verification).
    bool contains(uint64_t digest) const;

    /// Drop every unpinned resident tile (the disk tier survives).
    void dropResident();

    size_t residentBytes() const;
    size_t pinnedBytes() const;
    size_t residentTiles() const;
    size_t budgetBytes() const { return cfg_.budgetBytes; }
    const std::string &dir() const { return cfg_.dir; }

    TileStoreStats stats() const;

    /// Digest used for tile content addressing (FNV-1a over bytes).
    static uint64_t digestOf(const std::vector<float> &data);

  private:
    friend class TileRef; ///< TileRef::Pin returns pins on destruction

    struct Entry;

    std::string pathFor(uint64_t digest) const;
    bool evictUntilLocked(size_t wantedBytes);
    void noteUnpinned(uint64_t digest, size_t bytes);

    TileStoreConfig cfg_;
    mutable std::mutex mu_;

    /// digest -> resident entry; `lru_` orders the unpinned ones.
    std::map<uint64_t, Entry> resident_;
    std::list<uint64_t> lru_; ///< front = most recently used
    size_t residentBytes_ = 0;
    size_t pinnedBytes_ = 0;
    bool dirReady_ = false;
    TileStoreStats stats_;
};

} // namespace image
} // namespace hifi

#endif // HIFI_IMAGE_TILE_STORE_HH
