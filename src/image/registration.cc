#include "image/registration.hh"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>

#include "common/parallel.hh"
#include "common/simd.hh"
#include "common/telemetry.hh"

#if HIFI_SIMD_AVX2_COMPILED
#include <immintrin.h>
#endif

namespace hifi
{
namespace image
{

namespace
{

/// Candidate offsets per parallel chunk in the MI shift search.
constexpr size_t kCandidateGrain = 4;

/// Pyramid levels stop once either downsampled dimension would drop
/// below this: with fewer pixels the joint histogram is too sparse for
/// the coarse MI peak to be trustworthy.
constexpr size_t kPyramidMinDim = 16;

/// Refinement radius around the upsampled coarse optimum, per level.
/// ±2 covers the upsampling rounding (±1) plus one pixel of detail
/// that only resolves at the finer level.
constexpr long kPyramidRefineRadius = 2;

/// Quantize an intensity into [0, bins).
inline size_t
quantize(float v, float lo, float inv_range, size_t bins)
{
    double t = (v - lo) * inv_range;
    t = std::clamp(t, 0.0, 1.0 - 1e-9);
    return static_cast<size_t>(t * static_cast<double>(bins));
}

/// Intensity ranges of both images, hoisted out of the shift search.
struct MiRanges
{
    float alo, ainv, blo, binv;
};

MiRanges
miRanges(const Image2D &a, const Image2D &b)
{
    MiRanges r;
    r.alo = a.minValue();
    const float ahi = a.maxValue();
    r.blo = b.minValue();
    const float bhi = b.maxValue();
    r.ainv = (ahi > r.alo) ? 1.0f / (ahi - r.alo) : 0.0f;
    r.binv = (bhi > r.blo) ? 1.0f / (bhi - r.blo) : 0.0f;
    return r;
}

/**
 * Reference MI at a shift: quantizes both images pixel by pixel for
 * this one candidate.  Every fast path below must reproduce its
 * result bit for bit (asserted by tests/test_image.cc).
 */
double
miAtShiftRef(const Image2D &a, const Image2D &b, const MiRanges &r,
             long dx, long dy, size_t bins)
{
    const long w = static_cast<long>(a.width());
    const long h = static_cast<long>(a.height());

    std::vector<double> joint(bins * bins, 0.0);
    std::vector<double> pa(bins, 0.0), pb(bins, 0.0);
    size_t n = 0;

    const long x0 = std::max(0l, dx), x1 = std::min(w, w + dx);
    const long y0 = std::max(0l, dy), y1 = std::min(h, h + dy);
    for (long y = y0; y < y1; ++y) {
        for (long x = x0; x < x1; ++x) {
            const size_t ia = quantize(
                a.at(static_cast<size_t>(x), static_cast<size_t>(y)),
                r.alo, r.ainv, bins);
            const size_t ib = quantize(
                b.at(static_cast<size_t>(x - dx),
                     static_cast<size_t>(y - dy)),
                r.blo, r.binv, bins);
            joint[ia * bins + ib] += 1.0;
            ++n;
        }
    }
    if (n == 0)
        return 0.0;

    const double inv_n = 1.0 / static_cast<double>(n);
    for (size_t i = 0; i < bins; ++i) {
        for (size_t j = 0; j < bins; ++j) {
            const double p = joint[i * bins + j] * inv_n;
            pa[i] += p;
            pb[j] += p;
        }
    }
    double mi = 0.0;
    for (size_t i = 0; i < bins; ++i) {
        if (pa[i] <= 0.0)
            continue;
        for (size_t j = 0; j < bins; ++j) {
            const double p = joint[i * bins + j] * inv_n;
            if (p > 0.0 && pb[j] > 0.0)
                mi += p * std::log(p / (pa[i] * pb[j]));
        }
    }
    return mi;
}

/// Reusable per-worker buffers for the quantized MI accumulation.
struct MiWorkspace
{
    std::vector<uint32_t> joint;
    std::vector<uint32_t> idx; ///< per-row joint indices (SIMD path)
    std::vector<double> pa, pb;
};

/// SIMD bin-index math runs in epi32 lanes: gate at 4096 bins so
/// ia * bins + ib stays far below 2^31 (4096^2 ~ 2^24).  Larger bin
/// counts (rare; quantizePlane allows up to 65535) take the scalar
/// loop, which uses size_t throughout.
constexpr size_t kMiSimdMaxBins = 4096;

#if HIFI_SIMD_AVX2_COMPILED

/// idx[k] = ra[k] * bins + rb[k] over pre-quantized uint16 rows,
/// eight pairs per step.  Pure integer arithmetic, so the indices are
/// trivially identical to the scalar loop's.
HIFI_AVX2_TARGET inline void
jointIndicesAvx2(const uint16_t *ra, const uint16_t *rb, size_t count,
                 uint32_t bins, uint32_t *out)
{
    const __m256i vbins = _mm256_set1_epi32(static_cast<int>(bins));
    size_t k = 0;
    for (; k + 8 <= count; k += 8) {
        const __m256i ia = _mm256_cvtepu16_epi32(_mm_loadu_si128(
            reinterpret_cast<const __m128i *>(ra + k)));
        const __m256i ib = _mm256_cvtepu16_epi32(_mm_loadu_si128(
            reinterpret_cast<const __m128i *>(rb + k)));
        const __m256i idx =
            _mm256_add_epi32(_mm256_mullo_epi32(ia, vbins), ib);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(out + k), idx);
    }
    for (; k < count; ++k)
        out[k] = static_cast<uint32_t>(ra[k]) * bins + rb[k];
}

/**
 * Vector form of quantize() for four floats: the float subtract /
 * multiply, the widening to double, the std::clamp comparison order,
 * and the truncating cast are each reproduced exactly, so every lane
 * lands in the same bin the scalar call would pick.
 */
HIFI_AVX2_TARGET inline __m128i
quantize4Avx2(__m128 v, __m128 vlo, __m128 vinv, __m256d vbins,
              __m256d zero, __m256d top)
{
    const __m128 tf = _mm_mul_ps(_mm_sub_ps(v, vlo), vinv);
    __m256d t = _mm256_cvtps_pd(tf);
    t = _mm256_blendv_pd(t, zero, _mm256_cmp_pd(t, zero, _CMP_LT_OQ));
    t = _mm256_blendv_pd(t, top, _mm256_cmp_pd(top, t, _CMP_LT_OQ));
    return _mm256_cvttpd_epi32(_mm256_mul_pd(t, vbins));
}

/// Fused one-shot row kernel: quantize both images on the fly and emit
/// joint indices, no intermediate QuantizedPlane.
HIFI_AVX2_TARGET inline void
quantIndicesAvx2(const float *pa, const float *pb, size_t count,
                 const MiRanges &r, uint32_t bins, uint32_t *out)
{
    const __m128 alo = _mm_set1_ps(r.alo), ainv = _mm_set1_ps(r.ainv);
    const __m128 blo = _mm_set1_ps(r.blo), binv = _mm_set1_ps(r.binv);
    const __m256d vbins = _mm256_set1_pd(static_cast<double>(bins));
    const __m256d zero = _mm256_setzero_pd();
    const __m256d top = _mm256_set1_pd(1.0 - 1e-9);
    const __m256i ibins = _mm256_set1_epi32(static_cast<int>(bins));
    size_t k = 0;
    for (; k + 8 <= count; k += 8) {
        const __m256i ia = _mm256_set_m128i(
            quantize4Avx2(_mm_loadu_ps(pa + k + 4), alo, ainv, vbins,
                          zero, top),
            quantize4Avx2(_mm_loadu_ps(pa + k), alo, ainv, vbins, zero,
                          top));
        const __m256i ib = _mm256_set_m128i(
            quantize4Avx2(_mm_loadu_ps(pb + k + 4), blo, binv, vbins,
                          zero, top),
            quantize4Avx2(_mm_loadu_ps(pb + k), blo, binv, vbins, zero,
                          top));
        const __m256i idx =
            _mm256_add_epi32(_mm256_mullo_epi32(ia, ibins), ib);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(out + k), idx);
    }
    for (; k < count; ++k) {
        out[k] = static_cast<uint32_t>(
                     quantize(pa[k], r.alo, r.ainv, bins)) * bins +
            static_cast<uint32_t>(quantize(pb[k], r.blo, r.binv, bins));
    }
}

#endif // HIFI_SIMD_AVX2_COMPILED

/**
 * Marginals + entropy sum over an integer joint histogram.  Shared by
 * every quantized path (pre-quantized planes and the fused one-shot)
 * so they cannot drift: the loop structure mirrors miAtShiftRef term
 * for term, and each uint32 count converts to the same double the
 * reference accumulated by repeated `+= 1.0`.
 */
double
miFromJointCounts(MiWorkspace &ws, size_t bins, size_t n)
{
    const double inv_n = 1.0 / static_cast<double>(n);
    ws.pa.assign(bins, 0.0);
    ws.pb.assign(bins, 0.0);
    for (size_t i = 0; i < bins; ++i) {
        for (size_t j = 0; j < bins; ++j) {
            const double p =
                static_cast<double>(ws.joint[i * bins + j]) * inv_n;
            ws.pa[i] += p;
            ws.pb[j] += p;
        }
    }
    double mi = 0.0;
    for (size_t i = 0; i < bins; ++i) {
        if (ws.pa[i] <= 0.0)
            continue;
        for (size_t j = 0; j < bins; ++j) {
            const double p =
                static_cast<double>(ws.joint[i * bins + j]) * inv_n;
            if (p > 0.0 && ws.pb[j] > 0.0)
                mi += p * std::log(p / (ws.pa[i] * ws.pb[j]));
        }
    }
    return mi;
}

/**
 * Fast MI at a shift over pre-quantized planes.  The joint histogram
 * is accumulated as integers (each reference bin count is a double
 * incremented by 1.0, hence an exact integer), and the marginal / MI
 * arithmetic below mirrors the reference loop structure term for
 * term, so the returned score is bitwise identical to miAtShiftRef.
 */
double
miAtShiftQ(const QuantizedPlane &a, const QuantizedPlane &b, long dx,
           long dy, MiWorkspace &ws)
{
    const size_t bins = a.bins;
    const long w = static_cast<long>(a.width);
    const long h = static_cast<long>(a.height);

    const long x0 = std::max(0l, dx), x1 = std::min(w, w + dx);
    const long y0 = std::max(0l, dy), y1 = std::min(h, h + dy);
    if (x0 >= x1 || y0 >= y1)
        return 0.0;

    ws.joint.assign(bins * bins, 0);
    const size_t count = static_cast<size_t>(x1 - x0);
#if HIFI_SIMD_AVX2_COMPILED
    if (common::simd::avx2() && bins <= kMiSimdMaxBins) {
        ws.idx.resize(count);
        for (long y = y0; y < y1; ++y) {
            const uint16_t *ra =
                a.idx.data() + static_cast<size_t>(y) * a.width + x0;
            const uint16_t *rb = b.idx.data() +
                static_cast<size_t>(y - dy) * b.width + (x0 - dx);
            jointIndicesAvx2(ra, rb, count,
                             static_cast<uint32_t>(bins),
                             ws.idx.data());
            for (size_t k = 0; k < count; ++k)
                ++ws.joint[ws.idx[k]];
        }
    } else
#endif
    {
        for (long y = y0; y < y1; ++y) {
            const uint16_t *ra =
                a.idx.data() + static_cast<size_t>(y) * a.width;
            const uint16_t *rb =
                b.idx.data() + static_cast<size_t>(y - dy) * b.width;
            for (long x = x0; x < x1; ++x) {
                ++ws.joint[static_cast<size_t>(ra[x]) * bins +
                           rb[x - dx]];
            }
        }
    }
    return miFromJointCounts(ws, bins,
                             count * static_cast<size_t>(y1 - y0));
}

/**
 * Fused one-shot MI: quantizes both images on the fly straight into
 * the integer joint histogram, skipping the QuantizedPlane
 * allocations entirely.  For a single evaluation (mutualInformation /
 * mutualInformationAtShift) the plane build costs more than it saves,
 * so this path undoes that regression; quantize() arithmetic is
 * shared, so the bin counts — and via miFromJointCounts the score —
 * are bitwise identical to the pre-quantized and reference paths.
 */
double
miOneShotQ(const Image2D &a, const Image2D &b, long dx, long dy,
           size_t bins, MiWorkspace &ws)
{
    const MiRanges r = miRanges(a, b);
    const long w = static_cast<long>(a.width());
    const long h = static_cast<long>(a.height());
    const long x0 = std::max(0l, dx), x1 = std::min(w, w + dx);
    const long y0 = std::max(0l, dy), y1 = std::min(h, h + dy);
    if (x0 >= x1 || y0 >= y1)
        return 0.0;

    ws.joint.assign(bins * bins, 0);
    const size_t count = static_cast<size_t>(x1 - x0);
#if HIFI_SIMD_AVX2_COMPILED
    if (common::simd::avx2() && bins <= kMiSimdMaxBins) {
        ws.idx.resize(count);
        for (long y = y0; y < y1; ++y) {
            const float *pa = a.row(static_cast<size_t>(y)) + x0;
            const float *pb =
                b.row(static_cast<size_t>(y - dy)) + (x0 - dx);
            quantIndicesAvx2(pa, pb, count, r,
                             static_cast<uint32_t>(bins),
                             ws.idx.data());
            for (size_t k = 0; k < count; ++k)
                ++ws.joint[ws.idx[k]];
        }
    } else
#endif
    {
        for (long y = y0; y < y1; ++y) {
            const float *pa = a.row(static_cast<size_t>(y));
            const float *pb = b.row(static_cast<size_t>(y - dy));
            for (long x = x0; x < x1; ++x) {
                ++ws.joint[quantize(pa[x], r.alo, r.ainv, bins) * bins +
                           quantize(pb[x - dx], r.blo, r.binv, bins)];
            }
        }
    }
    return miFromJointCounts(ws, bins,
                             count * static_cast<size_t>(y1 - y0));
}

/// Score candidate shifts (dx, dy) in parallel over quantized planes.
std::vector<double>
scoreCandidates(const QuantizedPlane &qa, const QuantizedPlane &qb,
                const std::vector<std::pair<long, long>> &cands)
{
    std::vector<double> score(cands.size());
    common::parallelFor(0, cands.size(), kCandidateGrain,
                        [&](size_t i0, size_t i1) {
        MiWorkspace ws;
        for (size_t i = i0; i < i1; ++i)
            score[i] = miAtShiftQ(qa, qb, cands[i].first,
                                  cands[i].second, ws);
    });
    return score;
}

/**
 * Winner selection shared by every search: the highest score, with
 * ties (within 1e-12) broken by the smallest |dx| + |dy| and then
 * lexicographically by (dy, dx).  A serial scan over precomputed
 * scores, so the result never depends on the thread count.
 */
std::pair<long, long>
pickBest(const std::vector<std::pair<long, long>> &cands,
         const std::vector<double> &score)
{
    double best = 0.0;
    long best_dx = 0, best_dy = 0, best_l1 = 0;
    bool have = false;
    for (size_t i = 0; i < cands.size(); ++i) {
        const long dx = cands[i].first, dy = cands[i].second;
        const long l1 = std::labs(dx) + std::labs(dy);
        const bool wins = !have || score[i] > best + 1e-12;
        const bool tied = have && !wins && score[i] >= best - 1e-12;
        if (wins ||
            (tied && (l1 < best_l1 ||
                      (l1 == best_l1 &&
                       std::make_pair(dy, dx) <
                           std::make_pair(best_dy, best_dx))))) {
            best = std::max(have ? best : score[i], score[i]);
            best_dx = dx;
            best_dy = dy;
            best_l1 = l1;
            have = true;
        }
    }
    return {best_dx, best_dy};
}

/// All (dx, dy) with |dx - cx| <= r, |dy - cy| <= r, clamped to the
/// full-window bound, enumerated in the exhaustive scan order.
std::vector<std::pair<long, long>>
windowCandidates(long cx, long cy, long r, long bound)
{
    std::vector<std::pair<long, long>> cands;
    const long dy0 = std::max(-bound, cy - r);
    const long dy1 = std::min(bound, cy + r);
    const long dx0 = std::max(-bound, cx - r);
    const long dx1 = std::min(bound, cx + r);
    cands.reserve(static_cast<size_t>(dy1 - dy0 + 1) *
                  static_cast<size_t>(dx1 - dx0 + 1));
    for (long dy = dy0; dy <= dy1; ++dy)
        for (long dx = dx0; dx <= dx1; ++dx)
            cands.emplace_back(dx, dy);
    return cands;
}

/// 2x2 box downsample (truncating odd edges), for the MI pyramid.
Image2D
downsample2(const Image2D &in)
{
    const size_t w2 = in.width() / 2;
    const size_t h2 = in.height() / 2;
    Image2D out(w2, h2);
    for (size_t y = 0; y < h2; ++y) {
        const float *r0 = in.row(2 * y);
        const float *r1 = in.row(2 * y + 1);
        float *o = out.row(y);
        for (size_t x = 0; x < w2; ++x)
            o[x] = 0.25f * (r0[2 * x] + r0[2 * x + 1] + r1[2 * x] +
                            r1[2 * x + 1]);
    }
    return out;
}

/// Ceil-divide a shift bound by 2^level.
long
levelShift(long max_shift, size_t level)
{
    return (max_shift + (1l << level) - 1) >> level;
}

std::pair<long, long>
registerShiftMiPyramid(const Image2D &fixed, const Image2D &moving,
                       const MiParams &params)
{
    // Build the pyramid until the coarse window is trivial or the
    // images get too small to histogram meaningfully.
    std::vector<std::pair<Image2D, Image2D>> levels;
    levels.emplace_back(fixed, moving);
    while (levelShift(params.maxShift, levels.size() - 1) > 2 &&
           levels.back().first.width() / 2 >= kPyramidMinDim &&
           levels.back().first.height() / 2 >= kPyramidMinDim) {
        levels.emplace_back(downsample2(levels.back().first),
                            downsample2(levels.back().second));
    }

    size_t evals = 0;
    auto search = [&](size_t level, long cx, long cy, long radius) {
        const Image2D &f = levels[level].first;
        const Image2D &m = levels[level].second;
        const QuantizedPlane qf = quantizePlane(f, params.bins);
        const QuantizedPlane qm = quantizePlane(m, params.bins);
        const auto cands = windowCandidates(
            cx, cy, radius, levelShift(params.maxShift, level));
        evals += cands.size();
        return pickBest(cands, scoreCandidates(qf, qm, cands));
    };

    // Exhaustive at the coarsest level, then refine downward.
    const size_t coarsest = levels.size() - 1;
    std::pair<long, long> best = search(
        coarsest, 0, 0, levelShift(params.maxShift, coarsest));
    for (size_t level = coarsest; level-- > 0;) {
        best = search(level, 2 * best.first, 2 * best.second,
                      kPyramidRefineRadius);
    }

    if (telemetry::enabled()) {
        telemetry::registry().counter("mi.pyramid.levels")
            .add(levels.size());
        telemetry::registry().counter("mi.pyramid.evals").add(evals);
    }
    return best;
}

} // namespace

QuantizedPlane
quantizePlane(const Image2D &img, size_t bins)
{
    if (bins < 2)
        throw std::invalid_argument("quantizePlane: bins < 2");
    if (bins > 65535)
        throw std::invalid_argument(
            "quantizePlane: bins exceed uint16_t indices");
    QuantizedPlane q;
    q.width = img.width();
    q.height = img.height();
    q.bins = bins;
    q.idx.resize(img.size());
    const float lo = img.minValue();
    const float hi = img.maxValue();
    const float inv = (hi > lo) ? 1.0f / (hi - lo) : 0.0f;
    const std::vector<float> &d = img.data();
    for (size_t i = 0; i < d.size(); ++i)
        q.idx[i] = static_cast<uint16_t>(quantize(d[i], lo, inv, bins));
    return q;
}

double
mutualInformation(const Image2D &a, const Image2D &b, size_t bins)
{
    if (a.width() != b.width() || a.height() != b.height())
        throw std::invalid_argument("mutualInformation: shape mismatch");
    if (bins < 2)
        throw std::invalid_argument("mutualInformation: bins < 2");
    if (bins > 65535)
        throw std::invalid_argument("mutualInformation: too many bins");
    // One evaluation: the fused path skips the quantized-plane build.
    MiWorkspace ws;
    return miOneShotQ(a, b, 0, 0, bins, ws);
}

double
mutualInformationAtShift(const Image2D &a, const Image2D &b, long dx,
                         long dy, size_t bins)
{
    if (a.width() != b.width() || a.height() != b.height())
        throw std::invalid_argument(
            "mutualInformationAtShift: shape mismatch");
    if (bins < 2)
        throw std::invalid_argument(
            "mutualInformationAtShift: bins < 2");
    if (bins > 65535)
        throw std::invalid_argument(
            "mutualInformationAtShift: too many bins");
    MiWorkspace ws;
    return miOneShotQ(a, b, dx, dy, bins, ws);
}

double
mutualInformationAtShiftReference(const Image2D &a, const Image2D &b,
                                  long dx, long dy, size_t bins)
{
    if (a.width() != b.width() || a.height() != b.height())
        throw std::invalid_argument(
            "mutualInformationAtShiftReference: shape mismatch");
    if (bins < 2)
        throw std::invalid_argument(
            "mutualInformationAtShiftReference: bins < 2");
    return miAtShiftRef(a, b, miRanges(a, b), dx, dy, bins);
}

std::pair<long, long>
registerShiftMi(const Image2D &fixed, const Image2D &moving,
                const MiParams &params)
{
    if (fixed.width() != moving.width() ||
        fixed.height() != moving.height()) {
        throw std::invalid_argument("registerShiftMi: shape mismatch");
    }
    if (params.strategy == MiStrategy::Pyramid)
        return registerShiftMiPyramid(fixed, moving, params);

    // Quantize each image exactly once; every candidate offset is
    // independent, so score them all in parallel and pick the winner
    // with the serial tie-break scan.
    const QuantizedPlane qf = quantizePlane(fixed, params.bins);
    const QuantizedPlane qm = quantizePlane(moving, params.bins);
    const auto cands =
        windowCandidates(0, 0, params.maxShift, params.maxShift);
    const std::vector<double> score = scoreCandidates(qf, qm, cands);
    if (telemetry::enabled())
        telemetry::registry().counter("mi.exhaustive.evals")
            .add(cands.size());
    return pickBest(cands, score);
}

std::pair<long, long>
registerShiftMiReference(const Image2D &fixed, const Image2D &moving,
                         const MiParams &params)
{
    if (fixed.width() != moving.width() ||
        fixed.height() != moving.height()) {
        throw std::invalid_argument(
            "registerShiftMiReference: shape mismatch");
    }
    const MiRanges ranges = miRanges(fixed, moving);
    const auto cands =
        windowCandidates(0, 0, params.maxShift, params.maxShift);
    std::vector<double> score(cands.size());
    common::parallelFor(0, cands.size(), kCandidateGrain,
                        [&](size_t i0, size_t i1) {
        for (size_t i = i0; i < i1; ++i)
            score[i] = miAtShiftRef(fixed, moving, ranges,
                                    cands[i].first, cands[i].second,
                                    params.bins);
    });
    return pickBest(cands, score);
}

std::pair<double, double>
registerShiftMiSubpixel(const Image2D &fixed, const Image2D &moving,
                        const MiParams &params)
{
    const auto best = registerShiftMi(fixed, moving, params);
    const QuantizedPlane qf = quantizePlane(fixed, params.bins);
    const QuantizedPlane qm = quantizePlane(moving, params.bins);
    MiWorkspace ws;

    auto mi_at = [&](long dx, long dy) {
        return miAtShiftQ(qf, qm, dx, dy, ws);
    };
    auto refine = [&](double m_minus, double m_0, double m_plus) {
        const double denom = m_minus - 2.0 * m_0 + m_plus;
        if (std::abs(denom) < 1e-12)
            return 0.0;
        const double delta = 0.5 * (m_minus - m_plus) / denom;
        return std::clamp(delta, -0.5, 0.5);
    };

    const double m0 = mi_at(best.first, best.second);
    const double fx = refine(mi_at(best.first - 1, best.second), m0,
                             mi_at(best.first + 1, best.second));
    const double fy = refine(mi_at(best.first, best.second - 1), m0,
                             mi_at(best.first, best.second + 1));
    return {static_cast<double>(best.first) + fx,
            static_cast<double>(best.second) + fy};
}

std::vector<std::pair<long, long>>
alignStack(const std::vector<Image2D> &slices, const MiParams &params)
{
    if (slices.empty())
        throw std::invalid_argument("alignStack: no slices");

    // Each neighbouring pair registers independently; only the prefix
    // accumulation into slice-0 coordinates is sequential.
    std::vector<std::pair<long, long>> pairwise(slices.size(),
                                                {0, 0});
    common::parallelFor(1, slices.size(), 1, [&](size_t i0, size_t i1) {
        for (size_t i = i0; i < i1; ++i)
            pairwise[i] =
                registerShiftMi(slices[i - 1], slices[i], params);
    });

    std::vector<std::pair<long, long>> shifts;
    shifts.reserve(slices.size());
    shifts.emplace_back(0, 0);
    long acc_x = 0, acc_y = 0;
    for (size_t i = 1; i < slices.size(); ++i) {
        // registerShiftMi returns the offset of slice i relative to
        // slice i-1; accumulate to express it relative to slice 0.
        acc_x += -pairwise[i].first;
        acc_y += -pairwise[i].second;
        shifts.emplace_back(acc_x, acc_y);
    }
    return shifts;
}

double
alignmentResidual(const std::vector<std::pair<long, long>> &recovered,
                  const std::vector<std::pair<long, long>> &truth)
{
    if (recovered.size() != truth.size() || recovered.empty())
        throw std::invalid_argument("alignmentResidual: size mismatch");
    const long ox = truth[0].first - recovered[0].first;
    const long oy = truth[0].second - recovered[0].second;
    double sum = 0.0;
    for (size_t i = 0; i < recovered.size(); ++i) {
        const double ex = static_cast<double>(
            recovered[i].first + ox - truth[i].first);
        const double ey = static_cast<double>(
            recovered[i].second + oy - truth[i].second);
        sum += std::hypot(ex, ey);
    }
    return sum / static_cast<double>(recovered.size());
}

} // namespace image
} // namespace hifi
