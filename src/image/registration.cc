#include "image/registration.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/parallel.hh"

namespace hifi
{
namespace image
{

namespace
{

/// Candidate offsets per parallel chunk in the MI shift search.
constexpr size_t kCandidateGrain = 4;

/// Quantize an intensity into [0, bins).
inline size_t
quantize(float v, float lo, float inv_range, size_t bins)
{
    double t = (v - lo) * inv_range;
    t = std::clamp(t, 0.0, 1.0 - 1e-9);
    return static_cast<size_t>(t * static_cast<double>(bins));
}

/// Intensity ranges of both images, hoisted out of the shift search.
struct MiRanges
{
    float alo, ainv, blo, binv;
};

MiRanges
miRanges(const Image2D &a, const Image2D &b)
{
    MiRanges r;
    r.alo = a.minValue();
    const float ahi = a.maxValue();
    r.blo = b.minValue();
    const float bhi = b.maxValue();
    r.ainv = (ahi > r.alo) ? 1.0f / (ahi - r.alo) : 0.0f;
    r.binv = (bhi > r.blo) ? 1.0f / (bhi - r.blo) : 0.0f;
    return r;
}

/**
 * MI over the overlap of `a` and `b` when b is conceptually translated
 * by (dx, dy).  Pixels outside the overlap are ignored, which avoids the
 * edge-replication bias of shifting first.
 */
double
miAtShift(const Image2D &a, const Image2D &b, const MiRanges &r,
          long dx, long dy, size_t bins)
{
    const long w = static_cast<long>(a.width());
    const long h = static_cast<long>(a.height());

    std::vector<double> joint(bins * bins, 0.0);
    std::vector<double> pa(bins, 0.0), pb(bins, 0.0);
    size_t n = 0;

    const long x0 = std::max(0l, dx), x1 = std::min(w, w + dx);
    const long y0 = std::max(0l, dy), y1 = std::min(h, h + dy);
    for (long y = y0; y < y1; ++y) {
        for (long x = x0; x < x1; ++x) {
            const size_t ia = quantize(
                a.at(static_cast<size_t>(x), static_cast<size_t>(y)),
                r.alo, r.ainv, bins);
            const size_t ib = quantize(
                b.at(static_cast<size_t>(x - dx),
                     static_cast<size_t>(y - dy)),
                r.blo, r.binv, bins);
            joint[ia * bins + ib] += 1.0;
            ++n;
        }
    }
    if (n == 0)
        return 0.0;

    const double inv_n = 1.0 / static_cast<double>(n);
    for (size_t i = 0; i < bins; ++i) {
        for (size_t j = 0; j < bins; ++j) {
            const double p = joint[i * bins + j] * inv_n;
            pa[i] += p;
            pb[j] += p;
        }
    }
    double mi = 0.0;
    for (size_t i = 0; i < bins; ++i) {
        if (pa[i] <= 0.0)
            continue;
        for (size_t j = 0; j < bins; ++j) {
            const double p = joint[i * bins + j] * inv_n;
            if (p > 0.0 && pb[j] > 0.0)
                mi += p * std::log(p / (pa[i] * pb[j]));
        }
    }
    return mi;
}

} // namespace

double
mutualInformation(const Image2D &a, const Image2D &b, size_t bins)
{
    if (a.width() != b.width() || a.height() != b.height())
        throw std::invalid_argument("mutualInformation: shape mismatch");
    if (bins < 2)
        throw std::invalid_argument("mutualInformation: bins < 2");
    return miAtShift(a, b, miRanges(a, b), 0, 0, bins);
}

std::pair<long, long>
registerShiftMi(const Image2D &fixed, const Image2D &moving,
                const MiParams &params)
{
    if (fixed.width() != moving.width() ||
        fixed.height() != moving.height()) {
        throw std::invalid_argument("registerShiftMi: shape mismatch");
    }
    const MiRanges ranges = miRanges(fixed, moving);

    // Every candidate offset is independent: score them all in
    // parallel, then pick the winner with the exact serial scan order
    // (smaller shifts win ties), so the result never depends on the
    // thread count.
    const long span = 2 * params.maxShift + 1;
    const size_t n = static_cast<size_t>(span * span);
    std::vector<double> score(n);
    common::parallelFor(0, n, kCandidateGrain,
                        [&](size_t i0, size_t i1) {
        for (size_t i = i0; i < i1; ++i) {
            const long dy = static_cast<long>(i) / span -
                params.maxShift;
            const long dx = static_cast<long>(i) % span -
                params.maxShift;
            score[i] = miAtShift(fixed, moving, ranges, dx, dy,
                                 params.bins);
        }
    });

    double best = -1.0;
    std::pair<long, long> best_shift{0, 0};
    for (size_t i = 0; i < n; ++i) {
        // Prefer smaller shifts on ties for stability.
        if (score[i] > best + 1e-12) {
            best = score[i];
            best_shift = {static_cast<long>(i) % span - params.maxShift,
                          static_cast<long>(i) / span - params.maxShift};
        }
    }
    return best_shift;
}

std::pair<double, double>
registerShiftMiSubpixel(const Image2D &fixed, const Image2D &moving,
                        const MiParams &params)
{
    const auto best = registerShiftMi(fixed, moving, params);
    const MiRanges ranges = miRanges(fixed, moving);

    auto mi_at = [&](long dx, long dy) {
        return miAtShift(fixed, moving, ranges, dx, dy, params.bins);
    };
    auto refine = [&](double m_minus, double m_0, double m_plus) {
        const double denom = m_minus - 2.0 * m_0 + m_plus;
        if (std::abs(denom) < 1e-12)
            return 0.0;
        const double delta = 0.5 * (m_minus - m_plus) / denom;
        return std::clamp(delta, -0.5, 0.5);
    };

    const double m0 = mi_at(best.first, best.second);
    const double fx = refine(mi_at(best.first - 1, best.second), m0,
                             mi_at(best.first + 1, best.second));
    const double fy = refine(mi_at(best.first, best.second - 1), m0,
                             mi_at(best.first, best.second + 1));
    return {static_cast<double>(best.first) + fx,
            static_cast<double>(best.second) + fy};
}

std::vector<std::pair<long, long>>
alignStack(const std::vector<Image2D> &slices, const MiParams &params)
{
    if (slices.empty())
        throw std::invalid_argument("alignStack: no slices");

    // Each neighbouring pair registers independently; only the prefix
    // accumulation into slice-0 coordinates is sequential.
    std::vector<std::pair<long, long>> pairwise(slices.size(),
                                                {0, 0});
    common::parallelFor(1, slices.size(), 1, [&](size_t i0, size_t i1) {
        for (size_t i = i0; i < i1; ++i)
            pairwise[i] =
                registerShiftMi(slices[i - 1], slices[i], params);
    });

    std::vector<std::pair<long, long>> shifts;
    shifts.reserve(slices.size());
    shifts.emplace_back(0, 0);
    long acc_x = 0, acc_y = 0;
    for (size_t i = 1; i < slices.size(); ++i) {
        // registerShiftMi returns the offset of slice i relative to
        // slice i-1; accumulate to express it relative to slice 0.
        acc_x += -pairwise[i].first;
        acc_y += -pairwise[i].second;
        shifts.emplace_back(acc_x, acc_y);
    }
    return shifts;
}

double
alignmentResidual(const std::vector<std::pair<long, long>> &recovered,
                  const std::vector<std::pair<long, long>> &truth)
{
    if (recovered.size() != truth.size() || recovered.empty())
        throw std::invalid_argument("alignmentResidual: size mismatch");
    const long ox = truth[0].first - recovered[0].first;
    const long oy = truth[0].second - recovered[0].second;
    double sum = 0.0;
    for (size_t i = 0; i < recovered.size(); ++i) {
        const double ex = static_cast<double>(
            recovered[i].first + ox - truth[i].first);
        const double ey = static_cast<double>(
            recovered[i].second + oy - truth[i].second);
        sum += std::hypot(ex, ey);
    }
    return sum / static_cast<double>(recovered.size());
}

} // namespace image
} // namespace hifi
