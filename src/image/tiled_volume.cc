#include "image/tiled_volume.hh"

#include <algorithm>

namespace hifi
{
namespace image
{

namespace
{

size_t
ceilDiv(size_t a, size_t b)
{
    return (a + b - 1) / b;
}

} // namespace

common::Result<TiledVolume3D>
TiledVolume3D::create(size_t nx, size_t ny, size_t nz,
                      TileStore &store, size_t tileEdge,
                      size_t dirtyBudgetBytes)
{
    using R = common::Result<TiledVolume3D>;
    if (nx == 0 || ny == 0 || nz == 0)
        return R::failure(common::ErrorCode::InvalidArgument,
                          "TiledVolume3D: zero dimension (" +
                              std::to_string(nx) + " x " +
                              std::to_string(ny) + " x " +
                              std::to_string(nz) + ")");
    if (tileEdge == 0)
        return R::failure(common::ErrorCode::InvalidArgument,
                          "TiledVolume3D: tileEdge must be > 0");
    const size_t tile_bytes =
        tileEdge * tileEdge * tileEdge * sizeof(float);
    if (dirtyBudgetBytes != 0 && dirtyBudgetBytes < tile_bytes)
        return R::failure(
            common::ErrorCode::InvalidArgument,
            "TiledVolume3D: dirty budget (" +
                std::to_string(dirtyBudgetBytes) +
                " bytes) smaller than one " +
                std::to_string(tileEdge) + "^3 tile (" +
                std::to_string(tile_bytes) + " bytes)");

    TiledVolume3D v;
    v.store_ = &store;
    v.nx_ = nx;
    v.ny_ = ny;
    v.nz_ = nz;
    v.edge_ = tileEdge;
    v.tx_ = ceilDiv(nx, tileEdge);
    v.ty_ = ceilDiv(ny, tileEdge);
    v.tz_ = ceilDiv(nz, tileEdge);
    v.tileBytes_ = tile_bytes;
    v.dirtyBudgetBytes_ = dirtyBudgetBytes;
    v.slots_.resize(v.tx_ * v.ty_ * v.tz_);
    return R(std::move(v));
}

common::Result<TiledVolume3D>
TiledVolume3D::fromDense(const Volume3D &dense, TileStore &store,
                         size_t tileEdge)
{
    using R = common::Result<TiledVolume3D>;
    auto made = create(dense.nx(), dense.ny(), dense.nz(), store,
                       tileEdge);
    if (!made.ok())
        return made;
    TiledVolume3D v = made.takeValue();
    // Fill tile by tile (no LRU churn: each tile is sealed as soon as
    // it is complete, so the working set is one tile).
    std::vector<float> buf;
    for (size_t tz = 0; tz < v.tz_; ++tz)
        for (size_t ty = 0; ty < v.ty_; ++ty)
            for (size_t tx = 0; tx < v.tx_; ++tx) {
                buf.assign(v.edge_ * v.edge_ * v.edge_, 0.0f);
                const size_t x0 = tx * v.edge_;
                const size_t y0 = ty * v.edge_;
                const size_t z0 = tz * v.edge_;
                const size_t x1 = std::min(x0 + v.edge_, v.nx_);
                const size_t y1 = std::min(y0 + v.edge_, v.ny_);
                const size_t z1 = std::min(z0 + v.edge_, v.nz_);
                for (size_t z = z0; z < z1; ++z)
                    for (size_t y = y0; y < y1; ++y)
                        for (size_t x = x0; x < x1; ++x)
                            buf[((z - z0) * v.edge_ + (y - y0)) *
                                    v.edge_ +
                                (x - x0)] = dense.at(x, y, z);
                auto put = store.put(buf);
                if (!put.ok())
                    return R(put.error());
                Slot &slot =
                    v.slots_[v.slotIndex(tx, ty, tz)];
                slot.state = SlotState::Sealed;
                slot.digest = put.value();
            }
    return R(std::move(v));
}

common::Result<TiledVolume3D>
TiledVolume3D::fromDigests(size_t nx, size_t ny, size_t nz,
                           size_t tileEdge,
                           std::vector<uint64_t> digests,
                           TileStore &store)
{
    using R = common::Result<TiledVolume3D>;
    auto made = create(nx, ny, nz, store, tileEdge);
    if (!made.ok())
        return made;
    TiledVolume3D v = made.takeValue();
    if (digests.size() != v.slots_.size())
        return R::failure(
            common::ErrorCode::DataLoss,
            "TiledVolume3D::fromDigests: " +
                std::to_string(digests.size()) + " digests for " +
                std::to_string(v.slots_.size()) + " tiles");
    for (size_t i = 0; i < digests.size(); ++i) {
        if (!store.contains(digests[i]))
            return R::failure(
                common::ErrorCode::DataLoss,
                "TiledVolume3D::fromDigests: tile " +
                    std::to_string(i) +
                    " is missing from the tile store");
        v.slots_[i].state = SlotState::Sealed;
        v.slots_[i].digest = digests[i];
    }
    return R(std::move(v));
}

common::Result<const float *>
TiledVolume3D::tileFloats(size_t slot, TileRef &ref) const
{
    using R = common::Result<const float *>;
    const Slot &s = slots_[slot];
    switch (s.state) {
      case SlotState::Zero:
        return R(static_cast<const float *>(nullptr));
      case SlotState::Dirty:
        return R(static_cast<const float *>(s.dirty->data()));
      case SlotState::Sealed: {
        auto fetched = store_->fetch(s.digest);
        if (!fetched.ok())
            return R(fetched.error());
        ref = fetched.takeValue();
        return R(ref.floats());
      }
    }
    return R::failure(common::ErrorCode::Internal,
                      "TiledVolume3D: corrupt slot state");
}

common::Result<std::vector<float> *>
TiledVolume3D::tileMutable(size_t slot)
{
    using R = common::Result<std::vector<float> *>;
    Slot &s = slots_[slot];
    switch (s.state) {
      case SlotState::Dirty:
        touchDirty(slot);
        return R(s.dirty.get());
      case SlotState::Zero:
        s.dirty = std::make_shared<std::vector<float>>(
            edge_ * edge_ * edge_, 0.0f);
        break;
      case SlotState::Sealed: {
        auto fetched = store_->fetch(s.digest);
        if (!fetched.ok())
            return R(fetched.error());
        s.dirty =
            std::make_shared<std::vector<float>>(*fetched.value());
        break;
      }
    }
    s.state = SlotState::Dirty;
    s.digest = 0;
    dirtyBytes_ += tileBytes_;
    dirtyLru_.push_front(slot);
    s.lruIt = dirtyLru_.begin();
    return R(s.dirty.get());
}

void
TiledVolume3D::touchDirty(size_t slot)
{
    dirtyLru_.splice(dirtyLru_.begin(), dirtyLru_,
                     slots_[slot].lruIt);
}

std::optional<common::Error>
TiledVolume3D::sealSlot(size_t slot)
{
    Slot &s = slots_[slot];
    auto put = store_->put(std::move(*s.dirty));
    if (!put.ok())
        return put.error();
    s.dirty.reset();
    s.state = SlotState::Sealed;
    s.digest = put.value();
    dirtyBytes_ -= tileBytes_;
    dirtyLru_.erase(s.lruIt);
    return std::nullopt;
}

std::optional<common::Error>
TiledVolume3D::enforceDirtyBudget()
{
    if (dirtyBudgetBytes_ == 0)
        return std::nullopt;
    while (dirtyBytes_ > dirtyBudgetBytes_ && !dirtyLru_.empty()) {
        if (const auto err = sealSlot(dirtyLru_.back()))
            return err;
    }
    return std::nullopt;
}

std::optional<common::Error>
TiledVolume3D::setCrossSection(size_t x, const Image2D &img)
{
    if (store_ == nullptr || x >= nx_ || img.width() != ny_ ||
        img.height() != nz_)
        return common::Error{
            common::ErrorCode::InvalidArgument,
            "TiledVolume3D::setCrossSection: x=" + std::to_string(x) +
                " shape " + std::to_string(img.width()) + "x" +
                std::to_string(img.height()) + " into " +
                std::to_string(nx_) + "x" + std::to_string(ny_) +
                "x" + std::to_string(nz_)};

    const size_t tx = x / edge_;
    const size_t lx = x % edge_;
    for (size_t tz = 0; tz < tz_; ++tz)
        for (size_t ty = 0; ty < ty_; ++ty) {
            auto buf = tileMutable(slotIndex(tx, ty, tz));
            if (!buf.ok())
                return buf.error();
            float *t = buf.value()->data();
            const size_t y0 = ty * edge_;
            const size_t z0 = tz * edge_;
            const size_t y1 = std::min(y0 + edge_, ny_);
            const size_t z1 = std::min(z0 + edge_, nz_);
            for (size_t z = z0; z < z1; ++z)
                for (size_t y = y0; y < y1; ++y)
                    t[((z - z0) * edge_ + (y - y0)) * edge_ + lx] =
                        img.at(y, z);
            // Enforce per tile, not per slice: at a tile-layer
            // transition the whole previous layer is still dirty, so
            // deferring to the end of the slice would let the dirty
            // set peak at two full layers before any sealing.  The
            // tiles just written are at the LRU front, so the seals
            // always take the coldest (previous-layer) buffers.
            if (const auto err = enforceDirtyBudget())
                return err;
        }
    return std::nullopt;
}

common::Result<Image2D>
TiledVolume3D::crossSection(size_t x) const
{
    using R = common::Result<Image2D>;
    if (store_ == nullptr || x >= nx_)
        return R::failure(common::ErrorCode::InvalidArgument,
                          "TiledVolume3D::crossSection: x=" +
                              std::to_string(x) + " outside nx=" +
                              std::to_string(nx_));
    Image2D img(ny_, nz_);
    const size_t tx = x / edge_;
    const size_t lx = x % edge_;
    for (size_t tz = 0; tz < tz_; ++tz)
        for (size_t ty = 0; ty < ty_; ++ty) {
            TileRef ref;
            auto tf = tileFloats(slotIndex(tx, ty, tz), ref);
            if (!tf.ok())
                return R(tf.error());
            const float *t = tf.value();
            if (t == nullptr)
                continue; // zero tile; img is zero-initialized
            const size_t y0 = ty * edge_;
            const size_t z0 = tz * edge_;
            const size_t y1 = std::min(y0 + edge_, ny_);
            const size_t z1 = std::min(z0 + edge_, nz_);
            for (size_t z = z0; z < z1; ++z)
                for (size_t y = y0; y < y1; ++y)
                    img.at(y, z) =
                        t[((z - z0) * edge_ + (y - y0)) * edge_ +
                          lx];
        }
    return R(std::move(img));
}

common::Result<Image2D>
TiledVolume3D::planarView(size_t z) const
{
    using R = common::Result<Image2D>;
    if (store_ == nullptr || z >= nz_)
        return R::failure(common::ErrorCode::InvalidArgument,
                          "TiledVolume3D::planarView: z=" +
                              std::to_string(z) + " outside nz=" +
                              std::to_string(nz_));
    Image2D img(nx_, ny_);
    const size_t tz = z / edge_;
    const size_t lz = z % edge_;
    for (size_t ty = 0; ty < ty_; ++ty)
        for (size_t tx = 0; tx < tx_; ++tx) {
            TileRef ref;
            auto tf = tileFloats(slotIndex(tx, ty, tz), ref);
            if (!tf.ok())
                return R(tf.error());
            const float *t = tf.value();
            if (t == nullptr)
                continue;
            const size_t x0 = tx * edge_;
            const size_t y0 = ty * edge_;
            const size_t x1 = std::min(x0 + edge_, nx_);
            const size_t y1 = std::min(y0 + edge_, ny_);
            for (size_t y = y0; y < y1; ++y)
                for (size_t x = x0; x < x1; ++x)
                    img.at(x, y) =
                        t[(lz * edge_ + (y - y0)) * edge_ +
                          (x - x0)];
        }
    return R(std::move(img));
}

common::Result<Image2D>
TiledVolume3D::planarSlab(size_t z0, size_t z1) const
{
    using R = common::Result<Image2D>;
    if (store_ == nullptr || z1 <= z0 || z1 > nz_)
        return R::failure(common::ErrorCode::InvalidArgument,
                          "TiledVolume3D::planarSlab: bad range [" +
                              std::to_string(z0) + ", " +
                              std::to_string(z1) + ") over nz=" +
                              std::to_string(nz_));
    Image2D img(nx_, ny_, 0.0f);
    // Per output pixel the partial sums accumulate in strictly
    // increasing z — the same order as the dense triple loop — so the
    // float result is bitwise identical.
    for (size_t tz = z0 / edge_; tz * edge_ < z1; ++tz)
        for (size_t ty = 0; ty < ty_; ++ty)
            for (size_t tx = 0; tx < tx_; ++tx) {
                TileRef ref;
                auto tf = tileFloats(slotIndex(tx, ty, tz), ref);
                if (!tf.ok())
                    return R(tf.error());
                const float *t = tf.value();
                if (t == nullptr)
                    continue;
                const size_t zlo =
                    std::max(z0, tz * edge_);
                const size_t zhi =
                    std::min({z1, (tz + 1) * edge_, nz_});
                const size_t x0 = tx * edge_;
                const size_t y0 = ty * edge_;
                const size_t x1t = std::min(x0 + edge_, nx_);
                const size_t y1t = std::min(y0 + edge_, ny_);
                for (size_t z = zlo; z < zhi; ++z)
                    for (size_t y = y0; y < y1t; ++y)
                        for (size_t x = x0; x < x1t; ++x)
                            img.at(x, y) +=
                                t[((z - tz * edge_) * edge_ +
                                   (y - y0)) *
                                      edge_ +
                                  (x - x0)];
            }
    const float k = 1.0f / static_cast<float>(z1 - z0);
    for (float &v : img.data())
        v *= k;
    return R(std::move(img));
}

common::Result<float>
TiledVolume3D::at(size_t x, size_t y, size_t z) const
{
    using R = common::Result<float>;
    if (store_ == nullptr || x >= nx_ || y >= ny_ || z >= nz_)
        return R::failure(common::ErrorCode::InvalidArgument,
                          "TiledVolume3D::at: voxel out of range");
    TileRef ref;
    auto tf = tileFloats(
        slotIndex(x / edge_, y / edge_, z / edge_), ref);
    if (!tf.ok())
        return R(tf.error());
    const float *t = tf.value();
    if (t == nullptr)
        return R(0.0f);
    return R(float(t[((z % edge_) * edge_ + (y % edge_)) * edge_ +
                     (x % edge_)]));
}

common::Result<Volume3D>
TiledVolume3D::toDense() const
{
    using R = common::Result<Volume3D>;
    if (store_ == nullptr)
        return R::failure(common::ErrorCode::FailedPrecondition,
                          "TiledVolume3D::toDense: empty volume");
    Volume3D out(nx_, ny_, nz_);
    for (size_t tz = 0; tz < tz_; ++tz)
        for (size_t ty = 0; ty < ty_; ++ty)
            for (size_t tx = 0; tx < tx_; ++tx) {
                TileRef ref;
                auto tf = tileFloats(slotIndex(tx, ty, tz), ref);
                if (!tf.ok())
                    return R(tf.error());
                const float *t = tf.value();
                if (t == nullptr)
                    continue;
                const size_t x0 = tx * edge_;
                const size_t y0 = ty * edge_;
                const size_t z0 = tz * edge_;
                const size_t x1 = std::min(x0 + edge_, nx_);
                const size_t y1 = std::min(y0 + edge_, ny_);
                const size_t z1 = std::min(z0 + edge_, nz_);
                for (size_t z = z0; z < z1; ++z)
                    for (size_t y = y0; y < y1; ++y)
                        for (size_t x = x0; x < x1; ++x)
                            out.at(x, y, z) =
                                t[((z - z0) * edge_ + (y - y0)) *
                                      edge_ +
                                  (x - x0)];
            }
    return R(std::move(out));
}

std::optional<common::Error>
TiledVolume3D::sealAll()
{
    if (store_ == nullptr)
        return common::Error{common::ErrorCode::FailedPrecondition,
                             "TiledVolume3D::sealAll: empty volume"};
    // Deterministic slot order, not LRU order, so the digest list is
    // a pure function of the content.
    for (size_t i = 0; i < slots_.size(); ++i) {
        if (slots_[i].state != SlotState::Dirty)
            continue;
        if (const auto err = sealSlot(i))
            return err;
    }
    return std::nullopt;
}

common::Result<std::vector<uint64_t>>
TiledVolume3D::digests()
{
    using R = common::Result<std::vector<uint64_t>>;
    if (const auto err = sealAll())
        return R(*err);
    // Zero slots seal as the shared all-zero tile (content addressing
    // collapses them into one stored tile).
    uint64_t zero_digest = 0;
    bool have_zero = false;
    std::vector<uint64_t> out;
    out.reserve(slots_.size());
    for (Slot &s : slots_) {
        if (s.state == SlotState::Zero) {
            if (!have_zero) {
                auto put = store_->put(std::vector<float>(
                    edge_ * edge_ * edge_, 0.0f));
                if (!put.ok())
                    return R(put.error());
                zero_digest = put.value();
                have_zero = true;
            }
            s.state = SlotState::Sealed;
            s.digest = zero_digest;
        }
        out.push_back(s.digest);
    }
    return R(std::move(out));
}

} // namespace image
} // namespace hifi
