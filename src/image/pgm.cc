#include "image/pgm.hh"

#include <algorithm>
#include <fstream>
#include <stdexcept>

namespace hifi
{
namespace image
{

void
writePgm(const std::string &path, const Image2D &img, float lo,
         float hi)
{
    if (img.empty())
        throw std::invalid_argument("writePgm: empty image");
    std::ofstream os(path, std::ios::binary);
    if (!os)
        throw std::runtime_error("writePgm: cannot open " + path);

    if (lo >= hi) {
        lo = img.minValue();
        hi = img.maxValue();
        if (hi <= lo)
            hi = lo + 1.0f;
    }

    os << "P5\n"
       << img.width() << " " << img.height() << "\n255\n";
    for (size_t y = 0; y < img.height(); ++y) {
        for (size_t x = 0; x < img.width(); ++x) {
            const float t = (img.at(x, y) - lo) / (hi - lo);
            const auto v = static_cast<unsigned char>(
                std::clamp(t, 0.0f, 1.0f) * 255.0f + 0.5f);
            os.put(static_cast<char>(v));
        }
    }
}

Image2D
readPgm(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        throw std::runtime_error("readPgm: cannot open " + path);
    std::string magic;
    size_t w = 0, h = 0;
    int maxval = 0;
    is >> magic >> w >> h >> maxval;
    if (magic != "P5" || w == 0 || h == 0 || maxval != 255)
        throw std::runtime_error("readPgm: unsupported format");
    is.get(); // single whitespace after the header

    Image2D img(w, h);
    for (size_t y = 0; y < h; ++y) {
        for (size_t x = 0; x < w; ++x) {
            const int c = is.get();
            if (c < 0)
                throw std::runtime_error("readPgm: truncated file");
            img.at(x, y) = static_cast<float>(c) / 255.0f;
        }
    }
    return img;
}

} // namespace image
} // namespace hifi
