/**
 * @file
 * 3-D float volume with reslicing, used for FIB/SEM volumetric
 * reconstruction.
 *
 * Axis convention: the FIB mills slices perpendicular to X (the bitline
 * direction), so a cross-section image lives in the (Y, Z) plane and the
 * stack index runs along X.  The planar (top-down) view the analyst works
 * with lives in the (X, Y) plane at a chosen Z (IC layer depth).
 */

#ifndef HIFI_IMAGE_VOLUME3D_HH
#define HIFI_IMAGE_VOLUME3D_HH

#include <cstddef>
#include <vector>

#include "common/result.hh"
#include "image/image2d.hh"

namespace hifi
{
namespace image
{

/** Dense float volume indexed as (x, y, z). */
class Volume3D
{
  public:
    Volume3D() = default;

    /// Throws std::invalid_argument on a zero dimension; prefer
    /// createChecked for a typed error.
    Volume3D(size_t nx, size_t ny, size_t nz, float fill = 0.0f);

    /// Typed-error construction: InvalidArgument on a zero dimension
    /// instead of a throw (the fuzz-facing entry point).
    static common::Result<Volume3D>
    createChecked(size_t nx, size_t ny, size_t nz, float fill = 0.0f);

    size_t nx() const { return nx_; }
    size_t ny() const { return ny_; }
    size_t nz() const { return nz_; }
    bool empty() const { return data_.empty(); }

    float &
    at(size_t x, size_t y, size_t z)
    {
        return data_[(z * ny_ + y) * nx_ + x];
    }

    float
    at(size_t x, size_t y, size_t z) const
    {
        return data_[(z * ny_ + y) * nx_ + x];
    }

    /// Raw storage, laid out (z * ny + y) * nx + x — for kernels that
    /// stride across rows (e.g. the SEM shading gather loop).
    const float *data() const { return data_.data(); }

    /// Mutable raw storage (same layout); used by the checkpoint
    /// codec to reassemble a volume from stored tiles.
    float *mutableData() { return data_.data(); }

    /// Cross-section at a given X: image over (Y, Z).  Throws
    /// std::out_of_range when x >= nx().
    Image2D crossSection(size_t x) const;

    /// Typed-error variant: InvalidArgument out of range.
    common::Result<Image2D> crossSectionChecked(size_t x) const;

    /// Planar (top-down) view at a given Z: image over (X, Y).
    /// Throws std::out_of_range when z >= nz().
    Image2D planarView(size_t z) const;

    /// Typed-error variant: InvalidArgument out of range.
    common::Result<Image2D> planarViewChecked(size_t z) const;

    /// Insert a cross-section image (Y, Z) at position x.
    void setCrossSection(size_t x, const Image2D &img);

    /// Average planar view over a z range [z0, z1): a "layer slab".
    /// Throws std::invalid_argument on an empty or out-of-range
    /// window.
    Image2D planarSlab(size_t z0, size_t z1) const;

    /// Typed-error variant: InvalidArgument on a bad range.
    common::Result<Image2D> planarSlabChecked(size_t z0,
                                              size_t z1) const;

  private:
    size_t nx_ = 0;
    size_t ny_ = 0;
    size_t nz_ = 0;
    std::vector<float> data_;
};

/**
 * Ground-truth fault/recovery provenance of one acquired slice, stamped
 * by the simulator so tests can score the QC detector against the
 * injected truth.  Fault kinds are scope::FaultKind values stored as
 * ints to keep the image layer free of scope dependencies; 0 is clean.
 */
struct SliceProvenance
{
    /// Fault injected into the *first* acquisition attempt (0 = none).
    int injectedFault = 0;

    /// Whether QC flagged the first attempt (the detection the tests
    /// score against injectedFault).
    bool firstAttemptFlagged = false;

    /// image::QcFlag bitmask of the first attempt (which checks fired).
    unsigned firstAttemptFlags = 0;

    /// Total imaging attempts spent on this slice (1 = no retry).
    size_t attempts = 1;

    /// Fault present on the finally accepted attempt (residual,
    /// undetected corruption; 0 if the accepted frame was clean).
    int acceptedFault = 0;

    /// Some attempt passed QC (false => interpolated or unrecoverable).
    bool accepted = true;

    /// Slice was replaced by neighbour interpolation.
    bool interpolated = false;

    /// No attempt passed QC and no neighbour was available.
    bool unrecoverable = false;
};

/**
 * Stack of cross-section images plus per-slice alignment shifts.
 *
 * This is the raw product of a FIB/SEM acquisition: slice i is the SEM
 * image of the cross-section after the i-th mill, drifted by an unknown
 * (dy, dz) relative to slice 0.
 */
struct SliceStack
{
    std::vector<Image2D> slices;

    /// Ground-truth drift of each slice (known only to the simulator).
    std::vector<std::pair<long, long>> trueDrift;

    /// Fault/recovery provenance per slice.  Empty for the plain
    /// `scope::acquire` path; filled by `scope::acquireRobust`.
    std::vector<SliceProvenance> provenance;

    /// nm of material removed per slice (10 or 20 in the paper).
    double sliceThicknessNm = 20.0;

    /// nm per pixel in the cross-section images.
    double pixelResolutionNm = 5.0;
};

/**
 * Assemble an aligned slice stack into a volume.
 *
 * @param slices   cross-section images, all the same shape
 * @param shifts   per-slice (dy, dz) correction to apply (from the
 *                 registration step); slice i is translated by -shift[i]
 */
Volume3D assembleVolume(const std::vector<Image2D> &slices,
                        const std::vector<std::pair<long, long>> &shifts);

} // namespace image
} // namespace hifi

#endif // HIFI_IMAGE_VOLUME3D_HH
