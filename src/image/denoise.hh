/**
 * @file
 * Total-variation denoising, matching Section IV-C of the paper which
 * uses edge-preserving split-Bregman [27] or Chambolle [11] filters
 * before slice alignment.
 *
 * Both solve the ROF model: minimize TV(u) + (1 / 2 lambda) ||u - f||^2.
 * Chambolle iterates the dual projection; split-Bregman alternates a
 * Gauss-Seidel solve with shrinkage on the split gradient variables.
 */

#ifndef HIFI_IMAGE_DENOISE_HH
#define HIFI_IMAGE_DENOISE_HH

#include <cstddef>

#include "image/image2d.hh"

namespace hifi
{
namespace image
{

/** Parameters shared by the TV denoisers. */
struct TvParams
{
    /// Regularization weight: larger means smoother output.
    double lambda = 0.1;

    /// Outer iterations.
    size_t iterations = 50;

    /**
     * Opt-in convergence early-exit.  When > 0, iteration stops once
     * the per-iteration update drops to or below this threshold: the
     * max dual-field change for Chambolle, the max primal change for
     * split-Bregman.  The default 0 never exits early and runs the
     * exact iteration count — bit-identical to the pre-tolerance code.
     */
    double tolerance = 0.0;
};

/// Chambolle's dual projection algorithm (isotropic TV).
Image2D denoiseChambolle(const Image2D &input, const TvParams &params);

/// Split-Bregman (anisotropic TV) with Gauss-Seidel inner solves.
Image2D denoiseSplitBregman(const Image2D &input, const TvParams &params);

} // namespace image
} // namespace hifi

#endif // HIFI_IMAGE_DENOISE_HH
