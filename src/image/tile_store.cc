#include "image/tile_store.hh"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/telemetry.hh"

namespace hifi
{
namespace image
{

namespace
{

constexpr uint64_t kTileMagic = 0x48494649544c3154ull; // "HIFITL1T"

/// On-disk layout: magic, content digest, float count, payload.  The
/// digest is stored redundantly (file name and header) so a tile
/// renamed to the wrong digest is caught as DataLoss, not served.
constexpr size_t kTileHeaderBytes = 3 * sizeof(uint64_t);

uint64_t
fnvBytes(const void *data, size_t n)
{
    const auto *p = static_cast<const unsigned char *>(data);
    uint64_t h = 1469598103934665603ull;
    for (size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 1099511628211ull;
    }
    return h;
}

void
countTile(const char *which, uint64_t n = 1)
{
    if (telemetry::enabled())
        telemetry::registry()
            .counter(std::string("volume.tile.") + which)
            .add(n);
}

} // namespace

/// Held (shared) by every TileRef copy of one fetch; the destructor
/// returns the pin.  Must not outlive the store.
struct TileRef::Pin
{
    TileStore *store;
    uint64_t digest;
    size_t bytes;

    Pin(TileStore *s, uint64_t d, size_t b)
        : store(s), digest(d), bytes(b)
    {
    }

    // Non-copyable: a stray temporary's destructor would return the
    // pin a second time (and deadlock if the store lock is held).
    Pin(const Pin &) = delete;
    Pin &operator=(const Pin &) = delete;

    ~Pin() { store->noteUnpinned(digest, bytes); }
};

struct TileStore::Entry
{
    std::shared_ptr<const std::vector<float>> data;
    size_t bytes = 0;
    size_t pins = 0;

    /// Position in lru_; meaningful only while pins == 0.
    std::list<uint64_t>::iterator lruIt;
    bool inLru = false;
};

TileStore::TileStore(TileStoreConfig config) : cfg_(std::move(config))
{
}

TileStore::~TileStore() = default;

uint64_t
TileStore::digestOf(const std::vector<float> &data)
{
    return fnvBytes(data.data(), data.size() * sizeof(float));
}

std::string
TileStore::pathFor(uint64_t digest) const
{
    char name[32];
    std::snprintf(name, sizeof(name), "%016llx.tile",
                  static_cast<unsigned long long>(digest));
    return cfg_.dir + "/" + name;
}

bool
TileStore::evictUntilLocked(size_t wantedBytes)
{
    if (cfg_.budgetBytes == 0)
        return true;
    while (residentBytes_ + wantedBytes > cfg_.budgetBytes &&
           !lru_.empty()) {
        // A memory-only store must not evict: the tile has no disk
        // copy, so dropping it would be silent data loss.
        if (cfg_.dir.empty())
            return false;
        const uint64_t victim = lru_.back();
        lru_.pop_back();
        auto it = resident_.find(victim);
        residentBytes_ -= it->second.bytes;
        resident_.erase(it);
        ++stats_.evictions;
        countTile("evicted");
    }
    return residentBytes_ + wantedBytes <= cfg_.budgetBytes;
}

common::Result<uint64_t>
TileStore::put(std::vector<float> data)
{
    using R = common::Result<uint64_t>;
    const uint64_t digest = digestOf(data);
    const size_t bytes = data.size() * sizeof(float);

    std::unique_lock<std::mutex> lk(mu_);

    // Refuse before touching state when the budget can never admit
    // this tile in a memory-only store.
    if (cfg_.dir.empty() && cfg_.budgetBytes != 0 &&
        pinnedBytes_ + bytes > cfg_.budgetBytes)
        return R::failure(
            common::ErrorCode::ResourceExhausted,
            "TileStore::put: tile of " + std::to_string(bytes) +
                " bytes cannot fit the " +
                std::to_string(cfg_.budgetBytes) +
                "-byte budget without a spill directory");

    // Write-through to the disk tier (atomic temp + rename), skipped
    // when the content-addressed file already exists.
    if (!cfg_.dir.empty()) {
        std::error_code ec;
        if (!dirReady_) {
            std::filesystem::create_directories(cfg_.dir, ec);
            dirReady_ = true;
        }
        const std::string path = pathFor(digest);
        const bool have = cfg_.reuseExistingFiles &&
            std::filesystem::exists(path, ec);
        if (!have) {
            const std::string tmp = path + ".tmp";
            {
                std::ofstream out(tmp,
                                  std::ios::binary | std::ios::trunc);
                if (!out)
                    return R::failure(common::ErrorCode::Internal,
                                      "TileStore: cannot open " + tmp);
                const uint64_t header[3] = {
                    kTileMagic, digest,
                    static_cast<uint64_t>(data.size())};
                out.write(reinterpret_cast<const char *>(header),
                          sizeof(header));
                out.write(reinterpret_cast<const char *>(data.data()),
                          static_cast<std::streamsize>(bytes));
                out.flush();
                if (!out)
                    return R::failure(common::ErrorCode::Internal,
                                      "TileStore: short write to " +
                                          tmp);
            }
            if (std::rename(tmp.c_str(), path.c_str()) != 0)
                return R::failure(common::ErrorCode::Internal,
                                  "TileStore: rename to " + path +
                                      " failed");
            stats_.spilledBytes += kTileHeaderBytes + bytes;
            countTile("spilled_bytes", kTileHeaderBytes + bytes);
        }
    }

    auto it = resident_.find(digest);
    if (it != resident_.end()) {
        // Already resident (content-addressed duplicate): refresh.
        if (it->second.inLru)
            lru_.splice(lru_.begin(), lru_, it->second.lruIt);
        return R(uint64_t(digest));
    }

    Entry e;
    e.data = std::make_shared<const std::vector<float>>(
        std::move(data));
    e.bytes = bytes;
    lru_.push_front(digest);
    e.lruIt = lru_.begin();
    e.inLru = true;
    resident_.emplace(digest, std::move(e));
    residentBytes_ += bytes;

    if (!evictUntilLocked(0) && cfg_.dir.empty()) {
        // Memory-only store over budget: roll the insert back rather
        // than silently exceeding the bound.
        auto self = resident_.find(digest);
        lru_.erase(self->second.lruIt);
        residentBytes_ -= self->second.bytes;
        resident_.erase(self);
        return R::failure(
            common::ErrorCode::ResourceExhausted,
            "TileStore::put: resident budget exhausted and no spill "
            "directory to evict to");
    }
    return R(uint64_t(digest));
}

common::Result<TileRef>
TileStore::fetch(uint64_t digest)
{
    using R = common::Result<TileRef>;
    std::unique_lock<std::mutex> lk(mu_);

    auto it = resident_.find(digest);
    if (it == resident_.end()) {
        ++stats_.misses;
        countTile("miss");
        if (cfg_.dir.empty())
            return R::failure(common::ErrorCode::NotFound,
                              "TileStore::fetch: unknown tile digest");

        const std::string path = pathFor(digest);
        std::ifstream in(path, std::ios::binary);
        if (!in)
            return R::failure(common::ErrorCode::NotFound,
                              "TileStore::fetch: no tile file at " +
                                  path);
        uint64_t header[3] = {0, 0, 0};
        in.read(reinterpret_cast<char *>(header), sizeof(header));
        if (!in || header[0] != kTileMagic)
            return R::failure(common::ErrorCode::DataLoss,
                              "TileStore: bad tile header in " + path);
        if (header[1] != digest)
            return R::failure(common::ErrorCode::DataLoss,
                              "TileStore: tile file " + path +
                                  " carries a different digest "
                                  "(misnamed or tampered file)");
        std::vector<float> data(header[2]);
        in.read(reinterpret_cast<char *>(data.data()),
                static_cast<std::streamsize>(data.size() *
                                             sizeof(float)));
        if (!in || in.peek() != std::ifstream::traits_type::eof())
            return R::failure(common::ErrorCode::DataLoss,
                              "TileStore: truncated or oversized "
                              "tile file " + path);
        if (digestOf(data) != digest)
            return R::failure(common::ErrorCode::DataLoss,
                              "TileStore: content digest mismatch in " +
                                  path + " (bit rot or torn write)");

        Entry e;
        e.bytes = data.size() * sizeof(float);
        e.data = std::make_shared<const std::vector<float>>(
            std::move(data));
        it = resident_.emplace(digest, std::move(e)).first;
        residentBytes_ += it->second.bytes;
        evictUntilLocked(0); // push colder tiles out, never this one
    } else {
        ++stats_.hits;
        countTile("hit");
        if (it->second.inLru)
            lru_.splice(lru_.begin(), lru_, it->second.lruIt);
    }

    Entry &e = it->second;
    if (e.pins == 0) {
        if (e.inLru) {
            lru_.erase(e.lruIt);
            e.inLru = false;
        }
        pinnedBytes_ += e.bytes;
    }
    ++e.pins;

    if (cfg_.budgetBytes != 0 && pinnedBytes_ > cfg_.budgetBytes) {
        // Undo the pin: granting it would void the budget invariant.
        --e.pins;
        if (e.pins == 0) {
            pinnedBytes_ -= e.bytes;
            lru_.push_front(digest);
            e.lruIt = lru_.begin();
            e.inLru = true;
            evictUntilLocked(0);
        }
        return R::failure(
            common::ErrorCode::ResourceExhausted,
            "TileStore::fetch: pinned working set would exceed the " +
                std::to_string(cfg_.budgetBytes) + "-byte budget");
    }

    TileRef ref;
    ref.data_ = e.data;
    ref.digest_ = digest;
    ref.pin_ =
        std::make_shared<TileRef::Pin>(this, digest, e.bytes);
    return R(std::move(ref));
}

void
TileStore::noteUnpinned(uint64_t digest, size_t bytes)
{
    std::unique_lock<std::mutex> lk(mu_);
    auto it = resident_.find(digest);
    if (it == resident_.end())
        return; // unreachable: pinned entries are never evicted
    Entry &e = it->second;
    --e.pins;
    if (e.pins > 0)
        return;
    pinnedBytes_ -= bytes;
    lru_.push_front(digest);
    e.lruIt = lru_.begin();
    e.inLru = true;
    evictUntilLocked(0);
}

bool
TileStore::contains(uint64_t digest) const
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (resident_.count(digest))
            return true;
    }
    if (cfg_.dir.empty())
        return false;
    std::error_code ec;
    return std::filesystem::exists(pathFor(digest), ec);
}

void
TileStore::dropResident()
{
    std::lock_guard<std::mutex> lk(mu_);
    for (const uint64_t digest : lru_) {
        auto it = resident_.find(digest);
        residentBytes_ -= it->second.bytes;
        resident_.erase(it);
    }
    lru_.clear();
}

size_t
TileStore::residentBytes() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return residentBytes_;
}

size_t
TileStore::pinnedBytes() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return pinnedBytes_;
}

size_t
TileStore::residentTiles() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return resident_.size();
}

TileStoreStats
TileStore::stats() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return stats_;
}

} // namespace image
} // namespace hifi
