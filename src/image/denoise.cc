#include "image/denoise.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "common/parallel.hh"

namespace hifi
{
namespace image
{

namespace
{

/// Rows per parallel chunk; fixed so partitioning (and therefore the
/// output bits) never depends on the thread count.
constexpr size_t kRowGrain = 16;

/// Forward difference along x with Neumann boundary (0 at the edge).
inline float
dxp(const Image2D &u, size_t x, size_t y)
{
    return x + 1 < u.width() ? u.at(x + 1, y) - u.at(x, y) : 0.0f;
}

/// Forward difference along y with Neumann boundary.
inline float
dyp(const Image2D &u, size_t x, size_t y)
{
    return y + 1 < u.height() ? u.at(x, y + 1) - u.at(x, y) : 0.0f;
}

/// Backward-difference divergence of the dual field (px, py) at (x, y).
inline float
divergence(const Image2D &px, const Image2D &py, size_t x, size_t y,
           size_t w, size_t h)
{
    float d = px.at(x, y) - (x > 0 ? px.at(x - 1, y) : 0.0f);
    if (x + 1 == w)
        d = -(x > 0 ? px.at(x - 1, y) : 0.0f);
    float dy = py.at(x, y) - (y > 0 ? py.at(x, y - 1) : 0.0f);
    if (y + 1 == h)
        dy = -(y > 0 ? py.at(x, y - 1) : 0.0f);
    return d + dy;
}

} // namespace

Image2D
denoiseChambolle(const Image2D &input, const TvParams &params)
{
    if (input.empty())
        throw std::invalid_argument("denoiseChambolle: empty image");
    const size_t w = input.width();
    const size_t h = input.height();
    const double lambda = params.lambda;
    const double tau = 0.125; // <= 1/8 guarantees convergence

    // Dual field p = (px, py).
    Image2D px(w, h, 0.0f), py(w, h, 0.0f);
    Image2D g(w, h, 0.0f);

    // Each pass writes only its own rows and reads fields that are
    // constant for the duration of the pass, so row-band parallelism
    // is bitwise equal to the serial sweep.
    for (size_t it = 0; it < params.iterations; ++it) {
        // g = div p - f / lambda
        common::parallelFor(0, h, kRowGrain, [&](size_t y0, size_t y1) {
            for (size_t y = y0; y < y1; ++y)
                for (size_t x = 0; x < w; ++x)
                    g.at(x, y) = divergence(px, py, x, y, w, h) -
                        input.at(x, y) / static_cast<float>(lambda);
        });
        // p = (p + tau grad g) / (1 + tau |grad g|)
        common::parallelFor(0, h, kRowGrain, [&](size_t y0, size_t y1) {
            for (size_t y = y0; y < y1; ++y) {
                for (size_t x = 0; x < w; ++x) {
                    const float gx = dxp(g, x, y);
                    const float gy = dyp(g, x, y);
                    const float mag = std::sqrt(gx * gx + gy * gy);
                    const float denom =
                        1.0f + static_cast<float>(tau) * mag;
                    px.at(x, y) = (px.at(x, y) +
                                   static_cast<float>(tau) * gx) / denom;
                    py.at(x, y) = (py.at(x, y) +
                                   static_cast<float>(tau) * gy) / denom;
                }
            }
        });
    }

    // u = f - lambda div p (recompute div with the final p).
    Image2D out(w, h);
    common::parallelFor(0, h, kRowGrain, [&](size_t y0, size_t y1) {
        for (size_t y = y0; y < y1; ++y)
            for (size_t x = 0; x < w; ++x)
                out.at(x, y) = input.at(x, y) -
                    static_cast<float>(lambda) *
                        divergence(px, py, x, y, w, h);
    });
    return out;
}

Image2D
denoiseSplitBregman(const Image2D &input, const TvParams &params)
{
    if (input.empty())
        throw std::invalid_argument("denoiseSplitBregman: empty image");
    const size_t w = input.width();
    const size_t h = input.height();

    // Goldstein-Osher weights: mu couples to data, lam to the splitting.
    const float mu = static_cast<float>(1.0 / std::max(1e-6,
                                                       params.lambda));
    const float lam = 2.0f * mu;

    Image2D u = input;
    Image2D dx(w, h, 0.0f), dy(w, h, 0.0f);
    Image2D bx(w, h, 0.0f), by(w, h, 0.0f);

    auto shrink = [](float v, float t) {
        if (v > t)
            return v - t;
        if (v < -t)
            return v + t;
        return 0.0f;
    };

    // Several Gauss-Seidel sweeps per outer iteration: the u-step must
    // approximately solve its linear system before the shrinkage step,
    // otherwise the lagged div(d - b) feedback oscillates.  The sweeps
    // use red-black ordering: within one half-sweep a pixel reads only
    // opposite-colour neighbours, which are frozen, so each colour
    // pass is row-parallel and scheduling-independent.
    constexpr int kInnerSweeps = 4;

    auto relaxColor = [&](int color) {
        common::parallelFor(0, h, kRowGrain, [&](size_t y0, size_t y1) {
            for (size_t y = y0; y < y1; ++y) {
                const size_t x_start =
                    (static_cast<size_t>(color) + y) % 2;
                for (size_t x = x_start; x < w; x += 2) {
                    float sum = 0.0f;
                    int nbrs = 0;
                    if (x > 0) { sum += u.at(x - 1, y); ++nbrs; }
                    if (x + 1 < w) { sum += u.at(x + 1, y); ++nbrs; }
                    if (y > 0) { sum += u.at(x, y - 1); ++nbrs; }
                    if (y + 1 < h) { sum += u.at(x, y + 1); ++nbrs; }

                    // div(d - b) with backward differences.
                    float div = 0.0f;
                    div += (dx.at(x, y) - bx.at(x, y)) -
                        (x > 0 ? (dx.at(x - 1, y) - bx.at(x - 1, y))
                               : 0.0f);
                    div += (dy.at(x, y) - by.at(x, y)) -
                        (y > 0 ? (dy.at(x, y - 1) - by.at(x, y - 1))
                               : 0.0f);

                    // Normal equation: (mu - lam Laplacian) u =
                    // mu f - lam div(d - b).
                    const float rhs = mu * input.at(x, y) - lam * div;
                    u.at(x, y) = (rhs + lam * sum) /
                        (mu + lam * static_cast<float>(nbrs));
                }
            }
        });
    };

    for (size_t it = 0; it < params.iterations; ++it) {
        for (int sweep = 0; sweep < kInnerSweeps; ++sweep) {
            relaxColor(0);
            relaxColor(1);
        }
        // Shrinkage step on d, then Bregman update on b.  u is frozen
        // here and every pixel writes only itself: row-parallel.
        common::parallelFor(0, h, kRowGrain, [&](size_t y0, size_t y1) {
            for (size_t y = y0; y < y1; ++y) {
                for (size_t x = 0; x < w; ++x) {
                    const float gx = dxp(u, x, y);
                    const float gy = dyp(u, x, y);
                    dx.at(x, y) = shrink(gx + bx.at(x, y), 1.0f / lam);
                    dy.at(x, y) = shrink(gy + by.at(x, y), 1.0f / lam);
                    bx.at(x, y) += gx - dx.at(x, y);
                    by.at(x, y) += gy - dy.at(x, y);
                }
            }
        });
    }
    return u;
}

} // namespace image
} // namespace hifi
