#include "image/denoise.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "common/parallel.hh"
#include "common/simd.hh"

#if HIFI_SIMD_AVX2_COMPILED
#include <immintrin.h>
#endif

namespace hifi
{
namespace image
{

namespace
{

/// Rows per parallel chunk; fixed so partitioning (and therefore the
/// output bits) never depends on the thread count.
constexpr size_t kRowGrain = 16;

/*
 * The row helpers below are loop-split rewrites of the original
 * per-pixel boundary branches: the x == 0 / x == w-1 columns are
 * peeled and the y-boundary choice is resolved once per row (via a
 * shared zero row or a last-row flag), so the interior loop carries no
 * conditionals.  Operand order matches the branchy originals exactly —
 * including quirks like `sum = 0.0f; sum += v` (which is NOT the same
 * bits as `sum = v` when v is -0.0f) — so the outputs are bitwise
 * identical; tests/test_image.cc pins this down.
 */

/// One dual-field pixel update; returns the max component change when
/// Track (for the tolerance early-exit), 0 otherwise.
template <bool Track>
inline float
chambollePoint(float gx, float gy, float tau, float &px_v, float &py_v)
{
    const float mag = std::sqrt(gx * gx + gy * gy);
    const float denom = 1.0f + tau * mag;
    const float npx = (px_v + tau * gx) / denom;
    const float npy = (py_v + tau * gy) / denom;
    float delta = 0.0f;
    if constexpr (Track)
        delta = std::max(std::fabs(npx - px_v), std::fabs(npy - py_v));
    px_v = npx;
    py_v = npy;
    return delta;
}

/// Soft-threshold for the split-Bregman d-step.
inline float
shrink(float v, float t)
{
    if (v > t)
        return v - t;
    if (v < -t)
        return v + t;
    return 0.0f;
}

#if HIFI_SIMD_AVX2_COMPILED

/*
 * AVX2 row kernels.  Each reproduces the scalar loop's per-element
 * operation sequence exactly: float add/sub/mul/div/sqrt are IEEE
 * exactly-rounded element-wise, negation is a sign-bit xor, and every
 * branch becomes a quiet-ordered compare + blend pair, so the stored
 * bits match the scalar path bit for bit (no FMA contraction — these
 * are discrete intrinsics).  The max-delta reductions use max_ps,
 * which matches the scalar std::max chain for the non-negative finite
 * magnitudes these loops produce.
 */

/// Interior columns [1, w-1) of divergenceRow.
HIFI_AVX2_TARGET inline void
divergenceInteriorAvx2(const float *px_row, const float *py_row,
                       const float *py_prev, bool last_row, size_t w,
                       float *out)
{
    const __m256 signbit = _mm256_set1_ps(-0.0f);
    size_t x = 1;
    if (last_row) {
        for (; x + 8 <= w - 1; x += 8) {
            const __m256 ddx =
                _mm256_sub_ps(_mm256_loadu_ps(px_row + x),
                              _mm256_loadu_ps(px_row + x - 1));
            const __m256 ndy =
                _mm256_xor_ps(_mm256_loadu_ps(py_prev + x), signbit);
            _mm256_storeu_ps(out + x, _mm256_add_ps(ddx, ndy));
        }
        for (; x + 1 < w; ++x)
            out[x] = (px_row[x] - px_row[x - 1]) + -(py_prev[x]);
    } else {
        for (; x + 8 <= w - 1; x += 8) {
            const __m256 ddx =
                _mm256_sub_ps(_mm256_loadu_ps(px_row + x),
                              _mm256_loadu_ps(px_row + x - 1));
            const __m256 ddy =
                _mm256_sub_ps(_mm256_loadu_ps(py_row + x),
                              _mm256_loadu_ps(py_prev + x));
            _mm256_storeu_ps(out + x, _mm256_add_ps(ddx, ddy));
        }
        for (; x + 1 < w; ++x)
            out[x] = (px_row[x] - px_row[x - 1]) +
                (py_row[x] - py_prev[x]);
    }
}

/// Columns [0, n) of the Chambolle dual update (n = w - 1; the caller
/// peels the last column, whose gx is 0).  Returns the max dual change
/// when Track.
template <bool Track>
HIFI_AVX2_TARGET inline float
chambolleInteriorAvx2(const float *g_row, const float *g_next,
                      bool last_row, size_t n, float tau, float *px_row,
                      float *py_row)
{
    const __m256 vtau = _mm256_set1_ps(tau);
    const __m256 one = _mm256_set1_ps(1.0f);
    const __m256 absmask =
        _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
    __m256 vdelta = _mm256_setzero_ps();
    float delta = 0.0f;
    size_t x = 0;
    for (; x + 8 <= n; x += 8) {
        const __m256 g0 = _mm256_loadu_ps(g_row + x);
        const __m256 gx =
            _mm256_sub_ps(_mm256_loadu_ps(g_row + x + 1), g0);
        const __m256 gy = last_row
            ? _mm256_setzero_ps()
            : _mm256_sub_ps(_mm256_loadu_ps(g_next + x), g0);
        const __m256 mag = _mm256_sqrt_ps(_mm256_add_ps(
            _mm256_mul_ps(gx, gx), _mm256_mul_ps(gy, gy)));
        const __m256 denom =
            _mm256_add_ps(one, _mm256_mul_ps(vtau, mag));
        const __m256 opx = _mm256_loadu_ps(px_row + x);
        const __m256 opy = _mm256_loadu_ps(py_row + x);
        const __m256 npx = _mm256_div_ps(
            _mm256_add_ps(opx, _mm256_mul_ps(vtau, gx)), denom);
        const __m256 npy = _mm256_div_ps(
            _mm256_add_ps(opy, _mm256_mul_ps(vtau, gy)), denom);
        _mm256_storeu_ps(px_row + x, npx);
        _mm256_storeu_ps(py_row + x, npy);
        if constexpr (Track) {
            const __m256 adx =
                _mm256_and_ps(_mm256_sub_ps(npx, opx), absmask);
            const __m256 ady =
                _mm256_and_ps(_mm256_sub_ps(npy, opy), absmask);
            vdelta = _mm256_max_ps(vdelta, _mm256_max_ps(adx, ady));
        }
    }
    if constexpr (Track) {
        alignas(32) float lanes[8];
        _mm256_store_ps(lanes, vdelta);
        for (int i = 0; i < 8; ++i)
            delta = std::max(delta, lanes[i]);
    }
    for (; x < n; ++x) {
        const float d = chambollePoint<Track>(
            g_row[x + 1] - g_row[x],
            last_row ? 0.0f : g_next[x] - g_row[x], tau, px_row[x],
            py_row[x]);
        if constexpr (Track)
            delta = std::max(delta, d);
    }
    return delta;
}

/// Vector shrink(): the two exclusive threshold branches as blends.
HIFI_AVX2_TARGET inline __m256
shrinkAvx2(__m256 v, __m256 t, __m256 nt, __m256 zero)
{
    const __m256 hi = _mm256_cmp_ps(v, t, _CMP_GT_OQ);
    const __m256 lo = _mm256_cmp_ps(v, nt, _CMP_LT_OQ);
    const __m256 r = _mm256_blendv_ps(zero, _mm256_sub_ps(v, t), hi);
    return _mm256_blendv_ps(r, _mm256_add_ps(v, t), lo);
}

/// Split-Bregman shrinkage + Bregman update for one full row.
HIFI_AVX2_TARGET inline void
bregmanShrinkRowAvx2(const float *u_row, const float *u_down, size_t w,
                     float inv_lam, float *dx_row, float *bx_row,
                     float *dy_row, float *by_row)
{
    const __m256 t = _mm256_set1_ps(inv_lam);
    const __m256 nt = _mm256_xor_ps(t, _mm256_set1_ps(-0.0f));
    const __m256 zero = _mm256_setzero_ps();
    size_t x = 0;
    const size_t n = w - 1; // gx reads u_row[x + 1]
    for (; x + 8 <= n; x += 8) {
        const __m256 u0 = _mm256_loadu_ps(u_row + x);
        const __m256 gx =
            _mm256_sub_ps(_mm256_loadu_ps(u_row + x + 1), u0);
        const __m256 gy = u_down
            ? _mm256_sub_ps(_mm256_loadu_ps(u_down + x), u0)
            : zero;
        const __m256 vbx = _mm256_loadu_ps(bx_row + x);
        const __m256 vby = _mm256_loadu_ps(by_row + x);
        const __m256 ndx = shrinkAvx2(_mm256_add_ps(gx, vbx), t, nt,
                                      zero);
        const __m256 ndy = shrinkAvx2(_mm256_add_ps(gy, vby), t, nt,
                                      zero);
        _mm256_storeu_ps(dx_row + x, ndx);
        _mm256_storeu_ps(dy_row + x, ndy);
        _mm256_storeu_ps(
            bx_row + x, _mm256_add_ps(vbx, _mm256_sub_ps(gx, ndx)));
        _mm256_storeu_ps(
            by_row + x, _mm256_add_ps(vby, _mm256_sub_ps(gy, ndy)));
    }
    for (; x < w; ++x) {
        const float gx = x + 1 < w ? u_row[x + 1] - u_row[x] : 0.0f;
        const float gy = u_down ? u_down[x] - u_row[x] : 0.0f;
        dx_row[x] = shrink(gx + bx_row[x], inv_lam);
        dy_row[x] = shrink(gy + by_row[x], inv_lam);
        bx_row[x] += gx - dx_row[x];
        by_row[x] += gy - dy_row[x];
    }
}

#endif // HIFI_SIMD_AVX2_COMPILED

/// Interior columns of divergenceRow, dispatched on the active ISA.
inline void
divergenceInterior(const float *px_row, const float *py_row,
                   const float *py_prev, bool last_row, size_t w,
                   float *out)
{
#if HIFI_SIMD_AVX2_COMPILED
    if (common::simd::avx2()) {
        divergenceInteriorAvx2(px_row, py_row, py_prev, last_row, w,
                               out);
        return;
    }
#endif
    if (last_row) {
        for (size_t x = 1; x + 1 < w; ++x)
            out[x] = (px_row[x] - px_row[x - 1]) + -(py_prev[x]);
    } else {
        for (size_t x = 1; x + 1 < w; ++x)
            out[x] = (px_row[x] - px_row[x - 1]) +
                (py_row[x] - py_prev[x]);
    }
}

/**
 * Backward-difference divergence of the dual field (px, py) for one
 * row: out[x] = dx-part + dy-part.  `py_prev` is the previous row of
 * py, or an all-zero row when y == 0; `last_row` selects the y == h-1
 * boundary form.
 */
inline void
divergenceRow(const float *px_row, const float *py_row,
              const float *py_prev, bool last_row, size_t w, float *out)
{
    if (last_row) {
        if (w == 1) {
            out[0] = -0.0f + -(py_prev[0]);
            return;
        }
        out[0] = (px_row[0] - 0.0f) + -(py_prev[0]);
        divergenceInterior(px_row, py_row, py_prev, true, w, out);
        out[w - 1] = -(px_row[w - 2]) + -(py_prev[w - 1]);
    } else {
        if (w == 1) {
            out[0] = -0.0f + (py_row[0] - py_prev[0]);
            return;
        }
        out[0] = (px_row[0] - 0.0f) + (py_row[0] - py_prev[0]);
        divergenceInterior(px_row, py_row, py_prev, false, w, out);
        out[w - 1] = -(px_row[w - 2]) +
            (py_row[w - 1] - py_prev[w - 1]);
    }
}

/**
 * Dual update p = (p + tau grad g) / (1 + tau |grad g|) for one row.
 * `g_next` is the next row of g (unused when last_row: the forward
 * y-difference is 0 there).  Returns the row's max dual change when
 * Track.
 */
template <bool Track>
inline float
chambolleRow(const float *g_row, const float *g_next, bool last_row,
             size_t w, float tau, float *px_row, float *py_row)
{
    float row_delta = 0.0f;
#if HIFI_SIMD_AVX2_COMPILED
    if (common::simd::avx2()) {
        row_delta = chambolleInteriorAvx2<Track>(
            g_row, g_next, last_row, w - 1, tau, px_row, py_row);
        const float d = chambollePoint<Track>(
            0.0f, last_row ? 0.0f : g_next[w - 1] - g_row[w - 1], tau,
            px_row[w - 1], py_row[w - 1]);
        if constexpr (Track)
            row_delta = std::max(row_delta, d);
        return row_delta;
    }
#endif
    if (last_row) {
        for (size_t x = 0; x + 1 < w; ++x) {
            const float d = chambollePoint<Track>(
                g_row[x + 1] - g_row[x], 0.0f, tau, px_row[x],
                py_row[x]);
            if constexpr (Track)
                row_delta = std::max(row_delta, d);
        }
        const float d = chambollePoint<Track>(
            0.0f, 0.0f, tau, px_row[w - 1], py_row[w - 1]);
        if constexpr (Track)
            row_delta = std::max(row_delta, d);
    } else {
        for (size_t x = 0; x + 1 < w; ++x) {
            const float d = chambollePoint<Track>(
                g_row[x + 1] - g_row[x], g_next[x] - g_row[x], tau,
                px_row[x], py_row[x]);
            if constexpr (Track)
                row_delta = std::max(row_delta, d);
        }
        const float d = chambollePoint<Track>(
            0.0f, g_next[w - 1] - g_row[w - 1], tau, px_row[w - 1],
            py_row[w - 1]);
        if constexpr (Track)
            row_delta = std::max(row_delta, d);
    }
    return row_delta;
}

template <bool Track>
Image2D
denoiseChambolleImpl(const Image2D &input, const TvParams &params)
{
    const size_t w = input.width();
    const size_t h = input.height();
    const float lambda = static_cast<float>(params.lambda);
    const float tau = 0.125f; // <= 1/8 guarantees convergence
    const float tol = static_cast<float>(params.tolerance);

    // Dual field p = (px, py).
    Image2D px(w, h, 0.0f), py(w, h, 0.0f);
    Image2D g(w, h, 0.0f);
    const std::vector<float> zero(w, 0.0f);

    // Each pass writes only its own rows and reads fields that are
    // constant for the duration of the pass, so row-band parallelism
    // is bitwise equal to the serial sweep.
    for (size_t it = 0; it < params.iterations; ++it) {
        // g = div p - f / lambda
        common::parallelFor(0, h, kRowGrain, [&](size_t y0, size_t y1) {
            std::vector<float> div(w);
            for (size_t y = y0; y < y1; ++y) {
                divergenceRow(px.row(y), py.row(y),
                              y > 0 ? py.row(y - 1) : zero.data(),
                              y + 1 == h, w, div.data());
                const float *f_row = input.row(y);
                float *g_row = g.row(y);
                for (size_t x = 0; x < w; ++x)
                    g_row[x] = div[x] - f_row[x] / lambda;
            }
        });
        // p = (p + tau grad g) / (1 + tau |grad g|)
        const float max_delta = common::parallelReduce(
            0, h, kRowGrain, 0.0f,
            [&](size_t y0, size_t y1) {
                float chunk_delta = 0.0f;
                for (size_t y = y0; y < y1; ++y) {
                    const bool last = y + 1 == h;
                    const float d = chambolleRow<Track>(
                        g.row(y), last ? nullptr : g.row(y + 1), last,
                        w, tau, px.row(y), py.row(y));
                    if constexpr (Track)
                        chunk_delta = std::max(chunk_delta, d);
                }
                return chunk_delta;
            },
            [](float a, float b) { return std::max(a, b); });
        if (Track && max_delta <= tol)
            break;
    }

    // u = f - lambda div p (recompute div with the final p).
    Image2D out(w, h);
    common::parallelFor(0, h, kRowGrain, [&](size_t y0, size_t y1) {
        std::vector<float> div(w);
        for (size_t y = y0; y < y1; ++y) {
            divergenceRow(px.row(y), py.row(y),
                          y > 0 ? py.row(y - 1) : zero.data(),
                          y + 1 == h, w, div.data());
            const float *f_row = input.row(y);
            float *o_row = out.row(y);
            for (size_t x = 0; x < w; ++x)
                o_row[x] = f_row[x] - lambda * div[x];
        }
    });
    return out;
}

/// Per-row state handed to the split-Bregman relaxation helpers.
struct BregmanRows
{
    float *u_row;
    const float *u_up;   ///< row y-1 of u, or nullptr at y == 0
    const float *u_down; ///< row y+1 of u, or nullptr at y == h-1
    const float *f_row;
    const float *dx_row, *bx_row;
    const float *dy_row, *by_row;
    const float *dy_up, *by_up; ///< row y-1 of dy/by, or zero rows
};

/// One red-black Gauss-Seidel pixel with all four neighbours present.
inline void
bregmanInteriorPixel(const BregmanRows &r, size_t x, float mu,
                     float lam, float denom4)
{
    float sum = 0.0f;
    sum += r.u_row[x - 1];
    sum += r.u_row[x + 1];
    sum += r.u_up[x];
    sum += r.u_down[x];

    float div = 0.0f;
    div += (r.dx_row[x] - r.bx_row[x]) -
        (r.dx_row[x - 1] - r.bx_row[x - 1]);
    div += (r.dy_row[x] - r.by_row[x]) - (r.dy_up[x] - r.by_up[x]);

    const float rhs = mu * r.f_row[x] - lam * div;
    r.u_row[x] = (rhs + lam * sum) / denom4;
}

/// Generic (boundary-capable) pixel: branches on which neighbours
/// exist, exactly like the original per-pixel code.
inline void
bregmanBorderPixel(const BregmanRows &r, size_t x, size_t w, float mu,
                   float lam)
{
    float sum = 0.0f;
    int nbrs = 0;
    if (x > 0) { sum += r.u_row[x - 1]; ++nbrs; }
    if (x + 1 < w) { sum += r.u_row[x + 1]; ++nbrs; }
    if (r.u_up) { sum += r.u_up[x]; ++nbrs; }
    if (r.u_down) { sum += r.u_down[x]; ++nbrs; }

    // div(d - b) with backward differences.
    float div = 0.0f;
    div += (r.dx_row[x] - r.bx_row[x]) -
        (x > 0 ? (r.dx_row[x - 1] - r.bx_row[x - 1]) : 0.0f);
    div += (r.dy_row[x] - r.by_row[x]) - (r.dy_up[x] - r.by_up[x]);

    // Normal equation: (mu - lam Laplacian) u = mu f - lam div(d - b).
    const float rhs = mu * r.f_row[x] - lam * div;
    r.u_row[x] = (rhs + lam * sum) /
        (mu + lam * static_cast<float>(nbrs));
}

template <bool Track>
Image2D
denoiseSplitBregmanImpl(const Image2D &input, const TvParams &params)
{
    const size_t w = input.width();
    const size_t h = input.height();

    // Goldstein-Osher weights: mu couples to data, lam to the splitting.
    const float mu = static_cast<float>(1.0 / std::max(1e-6,
                                                       params.lambda));
    const float lam = 2.0f * mu;
    const float denom4 = mu + lam * 4.0f;
    const float tol = static_cast<float>(params.tolerance);

    Image2D u = input;
    Image2D dx(w, h, 0.0f), dy(w, h, 0.0f);
    Image2D bx(w, h, 0.0f), by(w, h, 0.0f);
    Image2D u_prev;
    const std::vector<float> zero(w, 0.0f);

    // Several Gauss-Seidel sweeps per outer iteration: the u-step must
    // approximately solve its linear system before the shrinkage step,
    // otherwise the lagged div(d - b) feedback oscillates.  The sweeps
    // use red-black ordering: within one half-sweep a pixel reads only
    // opposite-colour neighbours, which are frozen, so each colour
    // pass is row-parallel and scheduling-independent.
    constexpr int kInnerSweeps = 4;

    auto rowsAt = [&](size_t y) {
        BregmanRows r;
        r.u_row = u.row(y);
        r.u_up = y > 0 ? u.row(y - 1) : nullptr;
        r.u_down = y + 1 < h ? u.row(y + 1) : nullptr;
        r.f_row = input.row(y);
        r.dx_row = dx.row(y);
        r.bx_row = bx.row(y);
        r.dy_row = dy.row(y);
        r.by_row = by.row(y);
        r.dy_up = y > 0 ? dy.row(y - 1) : zero.data();
        r.by_up = y > 0 ? by.row(y - 1) : zero.data();
        return r;
    };

    auto relaxColor = [&](int color) {
        common::parallelFor(0, h, kRowGrain, [&](size_t y0, size_t y1) {
            for (size_t y = y0; y < y1; ++y) {
                const BregmanRows r = rowsAt(y);
                const size_t x_start =
                    (static_cast<size_t>(color) + y) % 2;
                if (y == 0 || y + 1 == h || w < 3) {
                    // Boundary row: every pixel may miss a neighbour.
                    for (size_t x = x_start; x < w; x += 2)
                        bregmanBorderPixel(r, x, w, mu, lam);
                    continue;
                }
                // Interior row: peel the x borders, no branches inside.
                size_t x = x_start;
                if (x == 0) {
                    bregmanBorderPixel(r, 0, w, mu, lam);
                    x = 2;
                }
                for (; x + 1 < w; x += 2)
                    bregmanInteriorPixel(r, x, mu, lam, denom4);
                if (x + 1 == w)
                    bregmanBorderPixel(r, x, w, mu, lam);
            }
        });
    };

    for (size_t it = 0; it < params.iterations; ++it) {
        if constexpr (Track)
            u_prev = u;
        for (int sweep = 0; sweep < kInnerSweeps; ++sweep) {
            relaxColor(0);
            relaxColor(1);
        }
        // Shrinkage step on d, then Bregman update on b.  u is frozen
        // here and every pixel writes only itself: row-parallel.  The
        // primal change for the tolerance check is folded in.
        const float max_delta = common::parallelReduce(
            0, h, kRowGrain, 0.0f,
            [&](size_t y0, size_t y1) {
                float chunk_delta = 0.0f;
                for (size_t y = y0; y < y1; ++y) {
                    const float *u_row = u.row(y);
                    const float *u_down =
                        y + 1 < h ? u.row(y + 1) : nullptr;
                    float *dx_row = dx.row(y), *bx_row = bx.row(y);
                    float *dy_row = dy.row(y), *by_row = by.row(y);
#if HIFI_SIMD_AVX2_COMPILED
                    if (common::simd::avx2()) {
                        bregmanShrinkRowAvx2(u_row, u_down, w,
                                             1.0f / lam, dx_row,
                                             bx_row, dy_row, by_row);
                    } else
#endif
                    {
                        for (size_t x = 0; x < w; ++x) {
                            const float gx = x + 1 < w
                                ? u_row[x + 1] - u_row[x] : 0.0f;
                            const float gy =
                                u_down ? u_down[x] - u_row[x] : 0.0f;
                            dx_row[x] =
                                shrink(gx + bx_row[x], 1.0f / lam);
                            dy_row[x] =
                                shrink(gy + by_row[x], 1.0f / lam);
                            bx_row[x] += gx - dx_row[x];
                            by_row[x] += gy - dy_row[x];
                        }
                    }
                    if constexpr (Track) {
                        const float *p_row = u_prev.row(y);
                        for (size_t x = 0; x < w; ++x)
                            chunk_delta = std::max(
                                chunk_delta,
                                std::fabs(u_row[x] - p_row[x]));
                    }
                }
                return chunk_delta;
            },
            [](float a, float b) { return std::max(a, b); });
        if (Track && max_delta <= tol)
            break;
    }
    return u;
}

} // namespace

Image2D
denoiseChambolle(const Image2D &input, const TvParams &params)
{
    if (input.empty())
        throw std::invalid_argument("denoiseChambolle: empty image");
    if (params.tolerance > 0.0)
        return denoiseChambolleImpl<true>(input, params);
    return denoiseChambolleImpl<false>(input, params);
}

Image2D
denoiseSplitBregman(const Image2D &input, const TvParams &params)
{
    if (input.empty())
        throw std::invalid_argument("denoiseSplitBregman: empty image");
    if (params.tolerance > 0.0)
        return denoiseSplitBregmanImpl<true>(input, params);
    return denoiseSplitBregmanImpl<false>(input, params);
}

} // namespace image
} // namespace hifi
