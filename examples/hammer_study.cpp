/**
 * @file
 * Activation-disturbance study on the command-level DRAM model: how
 * fast an aggressor corrupts its neighbours, and how a refresh policy
 * rescues them - with the per-topology timings bounding how fast an
 * attacker can even issue activations (OCSA chips activate slower,
 * so the same tREFI window admits fewer hammer attempts).
 *
 * Usage: hammer_study [threshold]   (default 600)
 */

#include <cstdlib>
#include <iostream>

#include "common/table.hh"
#include "dram/device.hh"

int
main(int argc, char **argv)
{
    using namespace hifi;
    using common::Table;

    const size_t threshold = argc > 1
        ? static_cast<size_t>(std::atoi(argv[1]))
        : 600;

    std::cout << "Disturbance study (threshold " << threshold
              << " activations)\n\n";
    Table t({"chip", "topology", "ACT cycle (ns)",
             "hammers / 7.8 us tREFI", "victim corrupted?",
             "with REF every tREFI"});
    for (const char *id : {"C5", "B5"}) {
        const auto &chip = models::chip(id);
        auto config = dram::BankConfig::fromChip(chip);
        config.disturbanceThreshold = threshold;
        config.rows = 64;
        config.rowsPerRefresh = config.rows;

        // Fastest legal hammer cycle: ACT ... PRE ... (tRAS + tRP).
        const double cycle =
            config.timings.tRas + config.timings.tRp + 1.0;
        const auto per_refi = static_cast<size_t>(7800.0 / cycle);

        auto hammer = [&](bool with_refresh) {
            dram::Bank bank(config);
            bank.cell(9, 0) = 0xFF;
            double t = 0.0;
            for (size_t i = 0; i < 3 * per_refi; ++i) {
                bank.activate(t, 10);
                bank.precharge(t + config.timings.tRas + 0.5);
                t += cycle;
                if (with_refresh &&
                    (i + 1) % per_refi == 0) {
                    bank.refresh(t);
                    t += 100.0;
                }
            }
            return bank.cell(9, 0) != 0xFF;
        };

        t.addRow({id,
                  chip.topology == models::Topology::Ocsa ? "OCSA"
                                                          : "classic",
                  Table::num(cycle, 1), std::to_string(per_refi),
                  hammer(false) ? "yes" : "no",
                  hammer(true) ? "CORRUPTED" : "protected"});
    }
    t.print(std::cout);
    std::cout << "\nSlower OCSA activation shrinks the attack budget "
                 "per refresh window; refresh resets the victim "
                 "exposure (the mechanism REGA-class mitigations "
                 "build on).\n";
    return 0;
}
