/**
 * @file
 * Monte-Carlo sensing-yield study: why vendors moved to offset-
 * cancellation sense amplifiers, and why inflated model transistors
 * are "optimistic" (Section VI-A).
 *
 * Sweeps the Pelgrom mismatch coefficient and compares the classic SA
 * against the OCSA, then shows the W/L effect by shrinking the latch
 * devices.
 *
 * Usage: sensing_yield [trials]   (default 30)
 */

#include <cstdlib>
#include <iostream>

#include "circuit/mismatch.hh"
#include "common/table.hh"

int
main(int argc, char **argv)
{
    using namespace hifi;
    using circuit::SaParams;
    using circuit::SaTopology;
    using common::Table;

    const size_t trials = argc > 1
        ? static_cast<size_t>(std::atoi(argv[1]))
        : 30;

    circuit::TranParams tp = circuit::defaultSaTran();
    tp.dt = 40e-12;

    std::cout << "Sensing-yield Monte Carlo (" << trials
              << " trials per cell)\n\n";
    std::cout << "1. Failure rate vs mismatch severity "
                 "(sigma_Vth = A_VT / sqrt(W L)):\n";
    Table t({"A_VT (V*nm)", "sigma nSA (mV)", "classic fails",
             "OCSA fails"});
    for (const double avt : {3.0, 6.0, 9.0, 12.0}) {
        circuit::MismatchParams mc;
        mc.avtVnm = avt;
        mc.trials = trials;
        mc.seed = 42;

        SaParams classic;
        classic.topology = SaTopology::Classic;
        const auto yc = circuit::sensingYield(classic, mc, tp);

        SaParams ocsa;
        ocsa.topology = SaTopology::OffsetCancellation;
        const auto yo = circuit::sensingYield(ocsa, mc, tp);

        t.addRow({Table::num(avt, 0),
                  Table::num(circuit::vthSigma(classic.sizing.nsaW,
                                               classic.sizing.nsaL,
                                               avt) *
                                 1e3,
                             1),
                  Table::percent(yc.failureRate(), 1),
                  Table::percent(yo.failureRate(), 1)});
    }
    t.print(std::cout);

    std::cout << "\n2. The W/L effect: shrinking the classic latch "
                 "(same A_VT = 8 V*nm):\n";
    Table w({"nSA WxL (nm)", "sigma (mV)", "failure rate"});
    for (const double scale : {1.6, 1.0, 0.6}) {
        SaParams p;
        p.topology = SaTopology::Classic;
        p.sizing.nsaW *= scale;
        p.sizing.nsaL *= scale;
        p.sizing.psaW *= scale;
        p.sizing.psaL *= scale;

        circuit::MismatchParams mc;
        mc.avtVnm = 8.0;
        mc.trials = trials;
        mc.seed = 43;
        const auto y = circuit::sensingYield(p, mc, tp);
        w.addRow({Table::num(p.sizing.nsaW, 0) + "x" +
                      Table::num(p.sizing.nsaL, 0),
                  Table::num(circuit::vthSigma(p.sizing.nsaW,
                                               p.sizing.nsaL, 8.0) *
                                 1e3,
                             1),
                  Table::percent(y.failureRate(), 1)});
    }
    w.print(std::cout);
    std::cout << "\nLarger W/L -> smaller sigma -> fewer failures: "
                 "models with inflated transistors (CROW: 9x widths) "
                 "simulate optimistically (Section VI-A).\n";
    return 0;
}
