/**
 * @file
 * Audit a user-proposed SA-region modification against all six chips,
 * the way Section VI-C audits prior work.  The proposal is described
 * on the command line as counts of added elements; the tool computes
 * the realistic per-chip area overhead using the measured effective
 * sizes and region geometry, and flags the I1/I2 wall when extra
 * bitlines are requested.
 *
 * Usage:
 *   overhead_audit [--iso N] [--sa N] [--col N] [--bitlines N]
 *                  [--claimed P%]
 *
 * Example: a proposal adding 2 isolation transistors and 1 extra SA
 * per region, claiming 0.5% chip overhead:
 *   overhead_audit --iso 2 --sa 1 --claimed 0.5
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "common/table.hh"
#include "models/chip_data.hh"

int
main(int argc, char **argv)
{
    using namespace hifi;
    using common::Table;
    using models::Role;

    int iso = 2, sa = 0, col = 0, bitlines = 0;
    double claimed = 0.005;
    for (int i = 1; i + 1 < argc; i += 2) {
        const std::string flag = argv[i];
        const double v = std::atof(argv[i + 1]);
        if (flag == "--iso")
            iso = static_cast<int>(v);
        else if (flag == "--sa")
            sa = static_cast<int>(v);
        else if (flag == "--col")
            col = static_cast<int>(v);
        else if (flag == "--bitlines")
            bitlines = static_cast<int>(v);
        else if (flag == "--claimed")
            claimed = v / 100.0;
    }

    std::cout << "Auditing a proposal adding " << iso
              << " isolation transistor(s), " << sa
              << " extra SA(s), " << col << " column transistor(s)";
    if (bitlines)
        std::cout << ", and " << bitlines << " extra bitline(s)";
    std::cout << " per SA region\nClaimed overhead: "
              << Table::percent(claimed, 2) << "\n\n";

    Table t({"chip", "ext (nm)", "overhead", "error vs claim",
             "note"});
    for (const auto &chip : models::allChips()) {
        std::string note = "-";
        double p_chip;
        if (bitlines > 0) {
            // I1/I2: no free track; the region effectively doubles
            // per extra bitline per existing pitch - dominant cost.
            p_chip = chip.arrayFraction();
            note = "I1/I2: no free bitline track; region doubles";
            t.addRow({chip.id, "-", Table::percent(p_chip, 1),
                      Table::times(p_chip / claimed - 1.0, 1), note});
            continue;
        }
        // Height extension along X from the added elements.  Both
        // stacked SAs must receive shared elements (Section V-C), so
        // per-bitline additions double.
        const double ext = iso * chip.isoEffectiveLength() +
            sa * 8.0 *
                (chip.effective(Role::Nsa, false) +
                 chip.effective(Role::Psa, false)) +
            col * chip.effective(Role::Column, false);
        const double extra = static_cast<double>(chip.mats) *
            chip.matWidthNm * ext;
        p_chip = extra / chip.dieAreaNm2();
        if (chip.topology == models::Topology::Ocsa && iso > 0)
            note = "chip already has (different) ISO devices";
        t.addRow({chip.id, Table::num(ext, 0),
                  Table::percent(p_chip, 2),
                  Table::times(p_chip / claimed - 1.0, 1), note});
    }
    t.print(std::cout);

    std::cout << "\nRecommendations applied (Section VI-E): R1 "
                 "(include wiring), R2 (interconnected SAs), R3 "
                 "(physical layout), R4 (consider OCSA).\n";
    return 0;
}
