/**
 * @file
 * SEM parameter study: sweeps dwell time (the paper uses 3 us and
 * 6 us) and slice thickness (10/20 nm), and reports image SNR,
 * alignment residual, and reconstruction fidelity - the trade-offs
 * Section IV discusses (dwell costs acquisition time, slices cost
 * X resolution).
 *
 * Usage: imaging_study [chip-id]   (default C5)
 */

#include <iostream>
#include <string>

#include "common/rng.hh"
#include "common/table.hh"
#include "core/pipeline.hh"
#include "fab/sa_region.hh"
#include "fab/voxelizer.hh"
#include "image/noise.hh"
#include "scope/fib.hh"
#include "scope/postprocess.hh"

int
main(int argc, char **argv)
{
    using namespace hifi;
    using common::Table;

    const std::string chip_id = argc > 1 ? argv[1] : "C5";
    const auto &chip = models::chip(chip_id);

    std::cout << "Imaging parameter study on " << chip_id << " ("
              << (chip.detector == models::Detector::Se ? "SE" : "BSE")
              << " detector)\n\n";

    // Fab once.
    fab::SaRegionSpec spec = fab::SaRegionSpec::fromChip(chip, 2);
    const double voxel = 4.0;
    spec.minGapNm = 4.0 * voxel;
    fab::SaRegionTruth truth;
    const auto cell = fab::buildSaRegion(spec, truth);
    const auto mats = fab::voxelize(*cell, truth.region,
                                    {voxel, 270.0});

    Table t({"dwell", "slice", "slices", "SNR", "align res (px)",
             "budget", "topology"});
    for (const double dwell : {1.0, 3.0, 6.0}) {
        for (const double slice_nm : {12.0, 20.0}) {
            scope::FibSemParams fib;
            fib.sem.detector = chip.detector;
            fib.sem.dwellUs = dwell;
            fib.sliceVoxels =
                static_cast<size_t>(slice_nm / voxel + 0.5);

            common::Rng rng(7);
            const auto stack = scope::acquire(mats, fib, rng);

            // SNR of the central raw slice against its clean render.
            const size_t mid =
                stack.slices.size() / 2 * fib.sliceVoxels;
            const auto clean = scope::semImageClean(
                mats, mid, fib.sliceVoxels, fib.sem);
            double snr_mid = 0.0;
            {
                common::Rng rng2(7);
                auto noisy = scope::semImage(
                    mats, mid, fib.sliceVoxels, fib.sem, rng2);
                snr_mid = image::snr(noisy, clean);
            }

            const auto post = scope::postprocess(stack);
            re::PlanarScales scales{
                static_cast<double>(fib.sliceVoxels) * voxel, voxel,
                voxel};
            const auto analysis = re::analyzeRegion(
                post.volume, scales, chip.detector);

            t.addRow({Table::num(dwell, 0) + " us",
                      Table::num(fib.sliceVoxels * voxel, 0) + " nm",
                      std::to_string(stack.slices.size()),
                      Table::num(snr_mid, 1),
                      Table::num(post.alignmentResidualPx, 2),
                      post.meetsAlignmentBudget(
                          stack.slices.front().height())
                          ? "met"
                          : "missed",
                      analysis.topology == truth.topology ? "ok"
                                                          : "WRONG"});
        }
    }
    t.print(std::cout);
    std::cout << "\nLonger dwell raises SNR (at acquisition-time "
                 "cost); thinner slices raise X resolution (at mill-"
                 "count cost) - the Section IV trade-offs.\n";
    return 0;
}
