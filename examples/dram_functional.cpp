/**
 * @file
 * Architecture-level consequence of the reverse engineering: a
 * command-level DRAM device whose timings come from transient
 * simulation of the *deployed* SA topology.  Runs the same workload
 * against a classic-SA chip (C5) and an OCSA chip (B5), then
 * demonstrates the out-of-spec two-row activation semantics.
 *
 * Usage: dram_functional
 */

#include <iostream>
#include <sstream>

#include "common/table.hh"
#include "dram/device.hh"

int
main()
{
    using namespace hifi;
    using common::Table;

    std::cout << "Timings derived from the analog substrate "
                 "(guard-banded):\n";
    Table t({"chip", "topology", "tRCD", "tRAS", "tRP"});
    for (const char *id : {"C5", "B5"}) {
        const auto config =
            dram::BankConfig::fromChip(models::chip(id));
        t.addRow({id,
                  config.topology == models::Topology::Ocsa
                      ? "OCSA"
                      : "classic",
                  Table::num(config.timings.tRcd, 1) + " ns",
                  Table::num(config.timings.tRas, 1) + " ns",
                  Table::num(config.timings.tRp, 1) + " ns"});
    }
    t.print(std::cout);

    // A controller tuned for classic timings against both chips.
    const auto classic = dram::BankConfig::fromChip(models::chip("C5"));
    std::ostringstream w;
    const double rd = classic.timings.tRcd + 1.0;
    const double pre = classic.timings.tRas + 2.0;
    const double act2 = pre + classic.timings.tRp + 1.0;
    w << "0 ACT 0 10\n"
      << rd << " WR 0 0 170\n"
      << rd + 5.0 << " RD 0 0\n"
      << pre + 15.0 << " PRE 0\n"
      << act2 + 15.0 << " ACT 0 11\n";

    std::cout << "\nSame controller schedule on both chips:\n";
    for (const char *id : {"C5", "B5"}) {
        dram::Device dev(1,
                         dram::BankConfig::fromChip(models::chip(id)));
        std::istringstream trace(w.str());
        const auto stats = dev.runTrace(trace);
        std::cout << "  " << id << ": " << stats.accepted << "/"
                  << stats.commands << " commands accepted";
        if (stats.rejected)
            std::cout << " (first rejection: " << stats.errors[0]
                      << ")";
        std::cout << "\n";
    }

    // Out-of-spec two-row activation.
    std::cout << "\nOut-of-spec ACT2 (two rows at once, Section "
                 "VI-D):\n";
    for (const char *id : {"C5", "B5"}) {
        dram::Device dev(1,
                         dram::BankConfig::fromChip(models::chip(id)));
        auto &bank = dev.bank(0);
        bank.cell(1, 0) = 0b11110000;
        bank.cell(2, 0) = 0b10101010;
        bank.activateTwoRows(0.0, 1, 2);
        std::cout << "  " << id << ": rows {0b11110000, 0b10101010} "
                  << "-> 0b";
        for (int b = 7; b >= 0; --b)
            std::cout << ((bank.cell(1, 0) >> b) & 1);
        std::cout << (models::chip(id).topology ==
                              models::Topology::Ocsa
                          ? "  (conflicts biased to 1: OCSA)"
                          : "  (conflicts fall to the mismatch "
                            "lottery: classic)")
                  << "\n";
    }
    return 0;
}
