/**
 * @file
 * Dumps full activation waveforms for the classic SA and the OCSA to
 * CSV files for external plotting (reproduces the data behind the
 * Fig. 2c and Fig. 9b event diagrams).
 *
 * Usage: sa_waveforms [output-dir]   (default /tmp)
 */

#include <iostream>
#include <string>

#include "circuit/sense_amp.hh"
#include "circuit/spice.hh"
#include "circuit/vcd.hh"
#include "common/csv.hh"

int
main(int argc, char **argv)
{
    using namespace hifi;
    const std::string dir = argc > 1 ? argv[1] : "/tmp";

    for (const auto topology : {circuit::SaTopology::Classic,
                                circuit::SaTopology::OffsetCancellation}) {
        circuit::SaParams params;
        params.topology = topology;
        params.storeOne = true;
        const circuit::SaRun run = circuit::simulateActivation(params);

        const bool ocsa =
            topology == circuit::SaTopology::OffsetCancellation;
        const std::string path = dir + "/hifi_waveform_" +
            (ocsa ? "ocsa" : "classic") + ".csv";

        std::vector<std::string> cols = {"t_ns", "BL", "BLB", "CN",
                                         "SAN", "SAP", "WL", "PEQ"};
        if (ocsa) {
            cols.push_back("SBL");
            cols.push_back("SBLB");
            cols.push_back("ISO");
            cols.push_back("OC");
        }
        common::CsvWriter csv(path, cols);

        const auto &bl = run.tran.trace("BL");
        for (size_t i = 0; i < bl.times.size(); ++i) {
            const double t = bl.times[i];
            std::vector<double> row = {
                t * 1e9,
                run.tran.trace("BL").values[i],
                run.tran.trace("BLB").values[i],
                run.tran.trace("CN").values[i],
                run.tran.trace("SAN").values[i],
                run.tran.trace("SAP").values[i],
                run.tran.trace("WL").values[i],
                run.tran.trace("PEQ").values[i],
            };
            if (ocsa) {
                row.push_back(run.tran.trace("SBL").values[i]);
                row.push_back(run.tran.trace("SBLB").values[i]);
                row.push_back(run.tran.trace("ISO").values[i]);
                row.push_back(run.tran.trace("OC").values[i]);
            }
            csv.addRow(row);
        }
        const std::string base = dir + "/hifi_waveform_" +
            (ocsa ? "ocsa" : "classic");
        circuit::writeVcdFile(base + ".vcd", run.tran);
        circuit::writeSaSpiceFile(base + ".sp", params);
        std::cout << "wrote " << path << " (+ .vcd, .sp; "
                  << csv.rows() << " samples; events: ";
        const auto &s = run.schedule;
        if (ocsa) {
            std::cout << "OC " << s.tOcStart * 1e9 << "-"
                      << s.tOcEnd * 1e9 << " ns, share "
                      << s.tChargeShare * 1e9 << " ns, pre-sense "
                      << s.tPreSense * 1e9 << " ns, restore "
                      << s.tLatch * 1e9 << " ns";
        } else {
            std::cout << "share " << s.tChargeShare * 1e9
                      << " ns, latch " << s.tLatch * 1e9 << " ns";
        }
        std::cout << ", precharge " << s.tPrechargeCmd * 1e9
                  << " ns)\n";
    }
    return 0;
}
