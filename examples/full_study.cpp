/**
 * @file
 * Regenerates the whole study as a markdown report: imaging, reverse
 * engineering on every chip, measurements, model accuracy, the
 * 13-paper audit, and the recommendations.
 *
 * Usage: full_study [output.md]   (default /tmp/hifi_study.md)
 */

#include <fstream>
#include <iostream>
#include <string>

#include "core/study.hh"
#include "models/export.hh"

int
main(int argc, char **argv)
{
    const std::string path =
        argc > 1 ? argv[1] : "/tmp/hifi_study.md";

    hifi::core::StudyConfig config;
    const auto result = hifi::core::runFullStudy(config);

    std::ofstream out(path);
    if (!out) {
        std::cerr << "cannot open " << path << "\n";
        return 1;
    }
    out << result.markdown;

    const auto files = hifi::models::exportDataset("/tmp");
    std::cout << "dataset exported: " << files.chips << ", "
              << files.transistors << ", " << files.publicModels
              << ", " << files.papers << "\n";
    std::cout << "study over " << result.chipsStudied
              << " chips written to " << path << "\n"
              << "topologies correct: "
              << (result.allTopologiesCorrect ? "all" : "NOT ALL")
              << "; cross-couplings traced: "
              << (result.allCrossCouplingsTraced ? "all" : "NOT ALL")
              << "\n";
    return result.allTopologiesCorrect ? 0 : 1;
}
