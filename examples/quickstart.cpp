/**
 * @file
 * Quickstart: the full HiFi-DRAM methodology in one call.
 *
 * Fabricates a virtual B5-like SA region, images it with the simulated
 * FIB/SEM (noise + stage drift), post-processes the stack (TV denoise,
 * MI alignment), reverse engineers the circuit, and finally rebuilds
 * the recovered circuit as an analog netlist and simulates an
 * activation with the measured transistor sizes.
 *
 * Usage: quickstart [chip-id]   (default B5; try C4 for a classic SA)
 */

#include <iostream>
#include <string>

#include "circuit/sense_amp.hh"
#include "common/table.hh"
#include "core/pipeline.hh"
#include "re/netlist_build.hh"

int
main(int argc, char **argv)
{
    using namespace hifi;
    using common::Table;

    core::PipelineConfig config;
    config.chipId = argc > 1 ? argv[1] : "B5";
    config.pairs = 3;
    config.seed = 1;

    std::cout << "HiFi-DRAM quickstart on chip " << config.chipId
              << "\n\n[1/3] fab -> FIB/SEM -> post-process -> reverse "
                 "engineer...\n";
    const core::PipelineReport report = core::runPipeline(config);

    std::cout << "  slices acquired:     " << report.slices << "\n"
              << "  alignment residual:  "
              << Table::num(report.alignmentResidualPx, 2) << " px ("
              << (report.alignmentBudgetMet ? "within" : "OUTSIDE")
              << " the 0.77% budget)\n"
              << "  topology extracted:  "
              << (report.extractedTopology == models::Topology::Ocsa
                      ? "offset-cancellation (OCSA)"
                      : "classic")
              << (report.topologyCorrect ? "  [correct]" : "  [WRONG]")
              << "\n  devices recovered:   " << report.extractedDevices
              << "/" << report.trueDevices << "\n"
              << "  matched template:    " << report.matchedTemplate
              << " (score " << Table::num(report.matchScore, 2)
              << ")\n"
              << "  cross-coupling:      "
              << (report.crossCouplingConsistent ? "traced (Fig. 8)"
                                                 : "incomplete")
              << "\n\n[2/3] recovered dimensions vs fab ground truth "
                 "(nm):\n";

    Table t({"role", "true W", "meas W", "true L", "meas L"});
    for (const auto &[role, rec] : report.roles) {
        t.addRow({models::roleName(role), Table::num(rec.trueW, 0),
                  Table::num(rec.measuredW, 1),
                  Table::num(rec.trueL, 0),
                  Table::num(rec.measuredL, 1)});
    }
    t.print(std::cout);

    std::cout << "\n[3/3] rebuilding the recovered circuit and "
                 "simulating one activation...\n";
    circuit::SaParams params =
        re::saParamsFromAnalysis(report.analysis);
    params.storeOne = true;
    const circuit::SaRun run = circuit::simulateActivation(params);
    std::cout << "  stored '1' latched "
              << (run.latchedCorrectly ? "correctly" : "WRONG")
              << "; BL=" << Table::num(run.blAtRestore, 2)
              << " V, BLB=" << Table::num(run.blbAtRestore, 2)
              << " V after restore; cell recharged to "
              << Table::num(run.cellAtRestore, 2) << " V\n";
    return report.topologyCorrect && run.latchedCorrectly ? 0 : 1;
}
