/**
 * @file
 * Exports the reconstructed planar views of an SA region and a MAT
 * slice as PGM images - the visual artifacts behind Fig. 7 (bitlines
 * and honeycomb capacitors in the MAT; wires, gates and active
 * regions in the SA region).
 *
 * Usage: planar_views [chip-id] [output-dir]   (default C5 /tmp)
 */

#include <iostream>
#include <string>

#include "common/rng.hh"
#include "fab/mat.hh"
#include "fab/sa_region.hh"
#include "fab/voxelizer.hh"
#include "image/pgm.hh"
#include "layout/layer.hh"
#include "scope/fib.hh"
#include "scope/postprocess.hh"

int
main(int argc, char **argv)
{
    using namespace hifi;
    const std::string chip_id = argc > 1 ? argv[1] : "C5";
    const std::string dir = argc > 2 ? argv[2] : "/tmp";
    const auto &chip = models::chip(chip_id);

    const double voxel = 4.0;

    auto image_cell = [&](const layout::Cell &cell,
                          const common::Rect &bounds,
                          const std::string &tag) {
        const auto mats = fab::voxelize(cell, bounds, {voxel, 270.0});
        scope::FibSemParams fib;
        fib.sem.detector = chip.detector;
        fib.sem.dwellUs = chip.dwellUs;
        fib.sem.seQuality = chip.seQuality;
        fib.sliceVoxels = std::max<size_t>(
            1, static_cast<size_t>(chip.sliceNm / voxel + 0.5));
        common::Rng rng(11);
        const auto stack = scope::acquire(mats, fib, rng);
        const auto post = scope::postprocess(stack);

        for (const auto layer :
             {layout::Layer::Active, layout::Layer::Gate,
              layout::Layer::Metal1, layout::Layer::Capacitor}) {
            const auto z = layout::layerZ(layer);
            const auto z0 = static_cast<size_t>(z.z0 / voxel);
            const auto z1 = std::min<size_t>(
                post.volume.nz(),
                static_cast<size_t>(z.z1 / voxel + 0.5));
            if (z0 >= post.volume.nz() || z1 <= z0)
                continue;
            const auto slab = post.volume.planarSlab(z0, z1);
            const std::string path = dir + "/hifi_" + chip_id + "_" +
                tag + "_" + layout::layerName(layer) + ".pgm";
            image::writePgm(path, slab);
            std::cout << "wrote " << path << " (" << slab.width()
                      << "x" << slab.height() << ")\n";
        }
        // One raw cross section, as acquired.
        image::writePgm(dir + "/hifi_" + chip_id + "_" + tag +
                            "_cross_section.pgm",
                        stack.slices[stack.slices.size() / 2]);
    };

    // SA region (Fig. 7b-d).
    fab::SaRegionTruth truth;
    const auto sa = fab::buildSaRegion(
        fab::SaRegionSpec::fromChip(chip, 3), truth);
    image_cell(*sa, truth.region, "sa");

    // MAT slice (Fig. 7a: bitlines below, honeycomb capacitors above).
    const auto mat =
        fab::buildMatSlice(fab::MatSpec::fromChip(chip, 10, 14));
    image_cell(*mat, mat->boundingBox(), "mat");

    std::cout << "done; view with any PGM-capable viewer\n";
    return 0;
}
