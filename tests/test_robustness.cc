/**
 * @file
 * Robustness-layer tests: the fault injector, the per-slice QC
 * detector, the bounded re-imaging / interpolation loop, typed-error
 * validation, and the determinism contract of the degraded pipeline
 * (ISSUE 3).  The injected-fault ground truth stamped into the
 * SliceStack provenance lets these tests score detection directly.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/parallel.hh"
#include "common/result.hh"
#include "core/pipeline.hh"
#include "image/qc.hh"
#include "scope/faults.hh"
#include "scope/fib.hh"

namespace
{

using namespace hifi;
using scope::FaultKind;

/**
 * Structured scene for acquisition tests: a silicon background with
 * horizontal layer bands (oxide, poly) that pin the z registration,
 * plus a tungsten grating and a copper bar that both advance one pixel
 * per slice in y — slice content varies smoothly with x, so slice
 * skips and drift excursions show up as a neighbour shift, without any
 * wrap-around jump that would look like a fault.
 */
image::Volume3D
makeScene(size_t nx = 120, size_t ny = 48, size_t nz = 40)
{
    image::Volume3D vol(nx, ny, nz, 1.0f); // silicon
    for (size_t x = 0; x < nx; ++x) {
        const size_t s = x / 2; // slice index at sliceVoxels == 2
        const size_t tri = s % 58 < 29 ? s % 58 : 58 - s % 58;
        const size_t bar_y = 4 + tri;
        for (size_t y = 0; y < ny; ++y) {
            for (size_t z = 0; z < nz; ++z) {
                float v = 1.0f;
                if (z >= 12 && z < 16)
                    v = 0.0f; // oxide band
                else if (z >= 22 && z < 26)
                    v = 2.0f; // poly band
                else if (z >= 16 && z < 22 &&
                         (y + 2000 - s) % 20 < 3)
                    v = 3.0f; // tungsten grating, +1 px/slice in y
                if (z >= 30 && z < 34 && y >= bar_y && y < bar_y + 4)
                    v = 4.0f; // moving copper bar
                vol.at(x, y, z) = v;
            }
        }
    }
    return vol;
}

scope::FibSemParams
sceneParams()
{
    scope::FibSemParams params;
    params.sliceVoxels = 2;
    params.driftProbability = 0.3;
    params.maxDriftPx = 3;
    return params;
}

// ---- common::Result ---------------------------------------------------

TEST(Result, HoldsValueOrError)
{
    common::Result<int> ok(42);
    EXPECT_TRUE(ok.ok());
    EXPECT_EQ(ok.value(), 42);
    EXPECT_THROW(ok.error(), std::logic_error);

    auto bad = common::Result<int>::failure(
        common::ErrorCode::NotFound, "missing");
    EXPECT_FALSE(bad.ok());
    EXPECT_EQ(bad.error().code, common::ErrorCode::NotFound);
    EXPECT_EQ(bad.error().message, "missing");
    EXPECT_THROW(bad.value(), std::logic_error);
    EXPECT_STREQ(common::errorCodeName(bad.error().code),
                 "not-found");
}

// ---- QC metrics -------------------------------------------------------

TEST(Qc, IntrinsicMetricsFlagObviousPathologies)
{
    common::Rng rng(7);
    image::Image2D clean(64, 48, 0.4f);
    for (float &v : clean.data())
        v += static_cast<float>(rng.gaussian(0.0, 0.05));
    // Some structure so the SNR numerator is non-zero.
    clean.fillRect(10, 10, 30, 20, 0.8f);

    const auto base = image::computeQcMetrics(clean);
    EXPECT_FALSE(base.flagged())
        << "flags " << base.flags << " sat "
        << base.saturationFraction;

    image::Image2D saturated = clean;
    saturated.fillRect(5, 5, 40, 30, 1.2f);
    EXPECT_TRUE(image::computeQcMetrics(saturated).flags &
                image::kQcSaturation);

    image::Image2D dead = clean;
    dead.fillRect(0, 20, 64, 28, 0.0f);
    EXPECT_TRUE(image::computeQcMetrics(dead).flags &
                image::kQcDeadRows);

    image::Image2D blank(64, 48, 0.0f);
    EXPECT_TRUE(image::computeQcMetrics(blank).flags &
                image::kQcLowSnr);
}

TEST(Qc, NoiseSigmaEstimateTracksTruth)
{
    common::Rng rng(11);
    image::Image2D img(96, 96, 0.5f);
    for (float &v : img.data())
        v += static_cast<float>(rng.gaussian(0.0, 0.08));
    const double sigma = image::estimateNoiseSigma(img);
    EXPECT_NEAR(sigma, 0.08, 0.02);
}

TEST(Qc, MonitorDetectsDefocusRelativeToHistory)
{
    common::Rng rng(13);
    image::QcMonitor monitor;
    image::Image2D sharp(64, 48, 0.4f);
    sharp.fillRect(20, 10, 44, 30, 0.8f);
    for (int i = 0; i < 3; ++i) {
        image::Image2D frame = sharp;
        for (float &v : frame.data())
            v += static_cast<float>(rng.gaussian(0.0, 0.05));
        const auto m = monitor.evaluate(frame);
        EXPECT_FALSE(m.flagged()) << "warmup " << i;
        monitor.accept(frame, m);
    }

    image::Image2D blurred = sharp;
    for (float &v : blurred.data())
        v += static_cast<float>(rng.gaussian(0.0, 0.05));
    scope::FaultParams faults;
    scope::applyFocusLoss(blurred, faults);
    const auto m = monitor.evaluate(blurred);
    EXPECT_TRUE(m.flags & image::kQcDefocus);
}

// ---- Fault application ------------------------------------------------

TEST(Faults, CurtainingImprintsLowFrequencyStripes)
{
    image::Image2D img(64, 48, 0.5f);
    const double before = image::stripeScore(img);
    scope::FaultParams faults;
    common::Rng rng(3);
    scope::applyCurtaining(img, faults, rng);
    EXPECT_GT(image::stripeScore(img), before + 0.02);
    EXPECT_LT(img.meanValue(), 0.5f); // dimming only
}

TEST(Faults, ChargingSaturatesARegion)
{
    image::Image2D img(64, 48, 0.3f);
    scope::FaultParams faults;
    common::Rng rng(4);
    scope::applyCharging(img, faults, rng);
    const double sat = image::saturationFraction(img, 1.05);
    EXPECT_NEAR(sat, faults.chargeAreaFrac, 0.1);
}

TEST(Faults, DropoutKillsRowsOrFrame)
{
    scope::FaultParams faults;
    bool saw_rows = false, saw_blank = false;
    for (uint64_t seed = 0; seed < 12; ++seed) {
        // Textured base so only the injected dead rows are constant.
        image::Image2D img(32, 40, 0.5f);
        for (size_t y = 0; y < img.height(); ++y)
            for (size_t x = 0; x < img.width(); ++x)
                img.at(x, y) +=
                    0.01f * static_cast<float>(x % 7) +
                    0.02f * static_cast<float>(y % 5);
        common::Rng rng(seed);
        scope::applyDetectorDropout(img, faults, rng);
        const double dead = image::deadRowFraction(img);
        if (dead >= 0.99)
            saw_blank = true;
        else if (dead > 0.02)
            saw_rows = true;
    }
    EXPECT_TRUE(saw_rows);
    EXPECT_TRUE(saw_blank);
}

TEST(Faults, SamplingIsSeedDeterministicAndRateFaithful)
{
    scope::FaultParams faults;
    faults.enabled = true;
    size_t counts[8] = {};
    for (uint64_t s = 0; s < 4000; ++s) {
        common::Rng a(99, s), b(99, s);
        const auto ka = scope::sampleFaultKind(faults, a);
        const auto kb = scope::sampleFaultKind(faults, b);
        EXPECT_EQ(ka, kb);
        ++counts[static_cast<size_t>(ka)];
    }
    const double total = 4000.0;
    EXPECT_NEAR(1.0 - static_cast<double>(
                          counts[0]) / total,
                faults.totalProbability(), 0.03);
    EXPECT_GT(counts[static_cast<size_t>(FaultKind::Curtaining)], 0u);
    EXPECT_GT(counts[static_cast<size_t>(FaultKind::SliceSkip)], 0u);
}

TEST(Faults, ValidationRejectsBadRates)
{
    scope::FaultParams faults;
    EXPECT_FALSE(scope::validate(faults).has_value());
    faults.chargingProbability = -0.1;
    ASSERT_TRUE(scope::validate(faults).has_value());
    EXPECT_EQ(scope::validate(faults)->code,
              common::ErrorCode::InvalidArgument);
    faults.chargingProbability = 0.5;
    faults.curtainingProbability = 0.6;
    EXPECT_TRUE(scope::validate(faults).has_value());
}

// ---- Robust acquisition ----------------------------------------------

TEST(AcquireRobust, CleanRunMatchesPlainShapeWithFullConfidence)
{
    const auto vol = makeScene();
    const auto params = sceneParams();
    scope::FaultParams faults; // disabled
    scope::RecoveryParams recovery;
    const auto robust = scope::acquireRobust(vol, params, faults,
                                             recovery, 21);
    EXPECT_EQ(robust.stack.slices.size(), 60u);
    EXPECT_EQ(robust.stack.provenance.size(), 60u);
    EXPECT_EQ(robust.slicesRetried, 0u);
    EXPECT_EQ(robust.retries, 0u);
    EXPECT_EQ(robust.slicesInterpolated, 0u);
    EXPECT_EQ(robust.slicesUnrecoverable, 0u);
    EXPECT_EQ(robust.faultsInjected, 0u);
    EXPECT_DOUBLE_EQ(robust.qcConfidence, 1.0);
    for (const auto &d : robust.stack.trueDrift) {
        EXPECT_LE(std::abs(d.first), params.maxDriftPx);
        EXPECT_LE(std::abs(d.second), params.maxDriftPx);
    }
}

TEST(AcquireRobust, DetectsAtLeastNinetyPercentOfInjectedFaults)
{
    const auto vol = makeScene();
    const auto params = sceneParams();
    // Dense imaging-fault mix (skips scored separately below).
    scope::FaultParams faults;
    faults.enabled = true;
    faults.curtainingProbability = 0.10;
    faults.chargingProbability = 0.10;
    faults.focusLossProbability = 0.10;
    faults.dropoutProbability = 0.08;
    faults.sliceSkipProbability = 0.0;
    faults.driftExcursionProbability = 0.08;
    scope::RecoveryParams recovery;

    size_t labeled = 0, detected = 0, clean = 0, false_pos = 0;
    size_t missed_by_kind[8] = {};
    size_t fp_by_flag[8] = {};
    for (uint64_t seed : {101u, 202u, 303u}) {
        const auto robust = scope::acquireRobust(
            vol, params, faults, recovery, seed);
        const auto &prov = robust.stack.provenance;
        ASSERT_EQ(prov.size(), 60u);
        // The first two slices have no QC history/reference yet;
        // relative detectors are blind there by construction.
        for (size_t s = 2; s < prov.size(); ++s) {
            if (prov[s].injectedFault != 0) {
                ++labeled;
                detected += prov[s].firstAttemptFlagged;
                if (!prov[s].firstAttemptFlagged)
                    ++missed_by_kind[prov[s].injectedFault % 8];
            } else {
                ++clean;
                false_pos += prov[s].firstAttemptFlagged;
                for (size_t b = 0; b < 8; ++b)
                    if (prov[s].firstAttemptFlags & (1u << b))
                        ++fp_by_flag[b];
            }
        }
    }
    auto table = [](const size_t *counts) {
        std::string s;
        for (size_t i = 0; i < 8; ++i)
            s += std::to_string(counts[i]) + " ";
        return s;
    };
    ASSERT_GT(labeled, 30u);
    const double recall = static_cast<double>(detected) /
        static_cast<double>(labeled);
    const double fpr = static_cast<double>(false_pos) /
        static_cast<double>(clean);
    EXPECT_GE(recall, 0.9)
        << detected << "/" << labeled << " missed-by-kind "
        << table(missed_by_kind);
    EXPECT_LE(fpr, 0.05)
        << false_pos << "/" << clean << " fp-by-flag-bit "
        << table(fp_by_flag);
}

TEST(AcquireRobust, RetryBudgetExhaustionFallsBackToInterpolation)
{
    const auto vol = makeScene();
    const auto params = sceneParams();
    // Only slice skips: the mill overshoot persists across re-imaging
    // attempts, so flagged slices must exhaust the budget and be
    // interpolated from accepted neighbours.
    scope::FaultParams faults;
    faults.enabled = true;
    faults.curtainingProbability = 0.0;
    faults.chargingProbability = 0.0;
    faults.focusLossProbability = 0.0;
    faults.dropoutProbability = 0.0;
    faults.sliceSkipProbability = 0.25;
    faults.driftExcursionProbability = 0.0;
    faults.skipOvershootSlices = 4;
    scope::RecoveryParams recovery;
    recovery.maxRetries = 2;

    const auto robust = scope::acquireRobust(vol, params, faults,
                                             recovery, 77);
    EXPECT_GT(robust.faultsInjected, 5u);
    EXPECT_GT(robust.slicesInterpolated, 0u);
    EXPECT_EQ(robust.slicesUnrecoverable, 0u);
    EXPECT_LT(robust.qcConfidence, 1.0);
    EXPECT_EQ(robust.interpolatedSlices.size(),
              robust.slicesInterpolated);

    size_t exhausted = 0;
    for (const auto &p : robust.stack.provenance) {
        if (!p.interpolated)
            continue;
        ++exhausted;
        // Interpolation only after the full budget was spent.
        EXPECT_EQ(p.attempts, recovery.maxRetries + 1);
        EXPECT_FALSE(p.accepted);
        EXPECT_EQ(p.injectedFault,
                  static_cast<int>(FaultKind::SliceSkip));
    }
    EXPECT_EQ(exhausted, robust.slicesInterpolated);
    // Retry time is charged image-only to the campaign cost model.
    auto cost = scope::campaignCost(models::chip("B5"));
    const double base_hours = cost.totalHours;
    scope::chargeRetries(cost, robust.retries);
    EXPECT_EQ(cost.reimagedSlices, robust.retries);
    EXPECT_NEAR(cost.totalHours - base_hours,
                static_cast<double>(robust.retries) *
                    cost.imageSecondsPerSlice / 3600.0,
                1e-9);
    EXPECT_GT(cost.retryHours, 0.0);
}

TEST(AcquireRobust, ResultIsAPureFunctionOfTheSeed)
{
    const auto vol = makeScene();
    const auto params = sceneParams();
    scope::FaultParams faults;
    faults.enabled = true;
    scope::RecoveryParams recovery;

    const auto a = scope::acquireRobust(vol, params, faults,
                                        recovery, 5);
    common::ScopedThreads eight(8);
    const auto b = scope::acquireRobust(vol, params, faults,
                                        recovery, 5);
    ASSERT_EQ(a.stack.slices.size(), b.stack.slices.size());
    EXPECT_EQ(a.retries, b.retries);
    EXPECT_EQ(a.interpolatedSlices, b.interpolatedSlices);
    EXPECT_EQ(a.stack.trueDrift, b.stack.trueDrift);
    for (size_t s = 0; s < a.stack.slices.size(); ++s)
        EXPECT_EQ(a.stack.slices[s].data(), b.stack.slices[s].data())
            << "slice " << s;

    const auto c = scope::acquireRobust(vol, params, faults,
                                        recovery, 6);
    bool any_different = false;
    for (size_t s = 0; s < a.stack.slices.size(); ++s)
        any_different |=
            a.stack.slices[s].data() != c.stack.slices[s].data();
    EXPECT_TRUE(any_different);
}

TEST(AcquireRobust, RejectsInvalidParameters)
{
    const auto vol = makeScene(8, 8, 8);
    scope::FibSemParams params;
    scope::FaultParams faults;
    scope::RecoveryParams recovery;

    scope::FibSemParams bad_fib = params;
    bad_fib.sliceVoxels = 0;
    EXPECT_THROW(scope::acquireRobust(vol, bad_fib, faults, recovery,
                                      1),
                 std::invalid_argument);

    scope::FaultParams bad_faults = faults;
    bad_faults.dropoutProbability = 2.0;
    EXPECT_THROW(scope::acquireRobust(vol, params, bad_faults,
                                      recovery, 1),
                 std::invalid_argument);

    scope::RecoveryParams bad_recovery = recovery;
    bad_recovery.maxRetries = scope::kMaxAttemptsPerSlice;
    EXPECT_THROW(scope::acquireRobust(vol, params, faults,
                                      bad_recovery, 1),
                 std::invalid_argument);
}

TEST(FibSemValidation, TypedErrorsForBadInputs)
{
    scope::FibSemParams params;
    EXPECT_FALSE(scope::validate(params).has_value());
    params.driftProbability = -0.5;
    ASSERT_TRUE(scope::validate(params).has_value());
    EXPECT_EQ(scope::validate(params)->code,
              common::ErrorCode::InvalidArgument);

    params = scope::FibSemParams{};
    params.sem.readNoise = -1.0;
    EXPECT_TRUE(scope::validate(params).has_value());

    scope::RecoveryParams recovery;
    EXPECT_FALSE(scope::validate(recovery).has_value());
    recovery.qc.shiftSearchPx = recovery.qc.maxNeighborShiftPx;
    ASSERT_TRUE(scope::validate(recovery).has_value());
    EXPECT_EQ(scope::validate(recovery)->code,
              common::ErrorCode::FailedPrecondition);
}

// ---- Pipeline validation & graceful degradation -----------------------

TEST(PipelineValidation, TypedErrorsInsteadOfCrashes)
{
    core::PipelineConfig config;
    EXPECT_FALSE(core::validateConfig(config).has_value());

    config.chipId = "Z9";
    auto err = core::validateConfig(config);
    ASSERT_TRUE(err.has_value());
    EXPECT_EQ(err->code, common::ErrorCode::NotFound);
    const auto checked = core::runPipelineChecked(config);
    EXPECT_FALSE(checked.ok());
    EXPECT_EQ(checked.error().code, common::ErrorCode::NotFound);
    EXPECT_THROW(core::runPipeline(config), std::out_of_range);

    config = core::PipelineConfig{};
    config.pairs = 0;
    err = core::validateConfig(config);
    ASSERT_TRUE(err.has_value());
    EXPECT_EQ(err->code, common::ErrorCode::InvalidArgument);
    EXPECT_THROW(core::runPipeline(config), std::invalid_argument);

    config = core::PipelineConfig{};
    config.driftProbability = -0.2;
    EXPECT_TRUE(core::validateConfig(config).has_value());

    config = core::PipelineConfig{};
    config.stackedSas = 0;
    EXPECT_TRUE(core::validateConfig(config).has_value());

    config = core::PipelineConfig{};
    config.faults.focusLossProbability = 1.5;
    EXPECT_TRUE(core::validateConfig(config).has_value());
    EXPECT_FALSE(core::runPipelineChecked(config).ok());
}

TEST(PipelineRobust, CleanQcPassesOnRealPipelineImagery)
{
    // Canary for QC false positives: faults enabled but all rates
    // zero routes the real B5 imagery through the QC/retry loop;
    // nothing may be flagged and nothing may degrade.
    core::PipelineConfig config;
    config.chipId = "B5";
    config.pairs = 2;
    config.seed = 17;
    config.faults.enabled = true;
    config.faults = config.faults.scaled(0.0);
    config.faults.enabled = true;

    const auto checked = core::runPipelineChecked(config);
    ASSERT_TRUE(checked.ok()) << checked.error().message;
    const auto &report = checked.value();
    // Content transitions may cost a confirmation re-image each, but
    // nothing may be interpolated, lost, or mis-reconstructed.
    EXPECT_LE(report.slicesRetried, report.slices / 10);
    EXPECT_EQ(report.slicesInterpolated, 0u);
    EXPECT_EQ(report.slicesUnrecoverable, 0u);
    EXPECT_FALSE(report.degraded);
    EXPECT_DOUBLE_EQ(report.qcConfidence, 1.0);
    EXPECT_TRUE(report.topologyCorrect);
}

TEST(PipelineRobust, RecoversB5TopologyUnderDefaultFaultRates)
{
    // The acceptance bar: with the documented default fault rates the
    // pipeline must not crash, must keep the report trustworthy, and
    // must still recover the correct topology on the B5 reference.
    core::PipelineConfig config;
    config.chipId = "B5";
    config.pairs = 2;
    config.seed = 42;
    config.faults.enabled = true;

    const auto checked = core::runPipelineChecked(config);
    ASSERT_TRUE(checked.ok()) << checked.error().message;
    const auto &report = checked.value();
    EXPECT_TRUE(report.topologyCorrect);
    EXPECT_EQ(report.extractedCommonGateStrips,
              report.trueCommonGateStrips);
    EXPECT_GE(report.qcConfidence, 0.8);
    EXPECT_GT(report.faultsInjected, 0u);
    // Re-imaging happened and was charged to the campaign.
    if (report.retries > 0) {
        EXPECT_GT(report.campaign.retryHours, 0.0);
        EXPECT_EQ(report.campaign.reimagedSlices, report.retries);
    }
    EXPECT_EQ(report.degraded,
              report.slicesInterpolated > 0 ||
                  report.slicesUnrecoverable > 0);

    // Golden pin for the imaging fast paths: the quantized MI
    // registration, contrast LUT and clean-frame cache promise
    // bit-identical default-settings results, so this seed's report
    // is frozen.  Any drift here means an "optimization" changed an
    // output.
    EXPECT_EQ(report.slices, 477u);
    EXPECT_EQ(report.retries, 109u);
    EXPECT_EQ(report.slicesInterpolated, 3u);
    EXPECT_EQ(report.slicesUnrecoverable, 0u);
    EXPECT_EQ(report.faultsInjected, 67u);
    EXPECT_EQ(report.faultsDetected, 58u);
    EXPECT_NEAR(report.qcConfidence, 0.99685534591194969, 1e-9);
    EXPECT_NEAR(report.alignmentResidualPx, 0.93217787216515957,
                1e-9);
    EXPECT_NEAR(report.maxDimErrorNm, 5.9612044621593583, 1e-6);
}

TEST(PipelineRobust, FaultFreePathIsBitwiseIdenticalAcrossThreads)
{
    // The fault-free pipeline stays on the legacy path: reports must
    // be bitwise identical at 1/2/8 threads and across repeat runs.
    core::PipelineConfig config;
    config.chipId = "C5";
    config.pairs = 2;
    config.seed = 11;

    core::PipelineReport reports[3];
    const size_t threads[3] = {1, 2, 8};
    for (size_t i = 0; i < 3; ++i) {
        config.threads = threads[i];
        reports[i] = core::runPipeline(config);
    }
    for (size_t i = 1; i < 3; ++i) {
        EXPECT_EQ(reports[i].extractedDevices,
                  reports[0].extractedDevices);
        EXPECT_EQ(reports[i].alignmentResidualPx,
                  reports[0].alignmentResidualPx);
        EXPECT_EQ(reports[i].maxDimErrorNm,
                  reports[0].maxDimErrorNm);
        EXPECT_EQ(reports[i].matchScore, reports[0].matchScore);
        EXPECT_EQ(reports[i].qcConfidence, 1.0);
        EXPECT_EQ(reports[i].retries, 0u);
        EXPECT_FALSE(reports[i].degraded);
    }
}

TEST(PipelineRobust, DegradedReportIsSeedPureAtAnyThreadCount)
{
    // The determinism lock for the robust path: retry counts,
    // interpolated-slice sets, confidence and the downstream numbers
    // are pure functions of the seed at any thread count.
    core::PipelineConfig config;
    config.chipId = "C5";
    config.pairs = 2;
    config.seed = 23;
    config.faults.enabled = true;
    config.faults = config.faults.scaled(2.0);
    config.faults.enabled = true;

    core::PipelineReport reports[3];
    const size_t threads[3] = {1, 2, 8};
    for (size_t i = 0; i < 3; ++i) {
        config.threads = threads[i];
        reports[i] = core::runPipeline(config);
    }
    for (size_t i = 1; i < 3; ++i) {
        EXPECT_EQ(reports[i].slicesRetried,
                  reports[0].slicesRetried);
        EXPECT_EQ(reports[i].retries, reports[0].retries);
        EXPECT_EQ(reports[i].interpolatedSlices,
                  reports[0].interpolatedSlices);
        EXPECT_EQ(reports[i].faultsInjected,
                  reports[0].faultsInjected);
        EXPECT_EQ(reports[i].faultsDetected,
                  reports[0].faultsDetected);
        EXPECT_EQ(reports[i].qcConfidence,
                  reports[0].qcConfidence);
        EXPECT_EQ(reports[i].alignmentResidualPx,
                  reports[0].alignmentResidualPx);
        EXPECT_EQ(reports[i].maxDimErrorNm,
                  reports[0].maxDimErrorNm);
    }
}

// ---- QC audit trail -------------------------------------------------

TEST(QcAudit, TrailExplainsEverySliceDecision)
{
    // The audit must agree with the provenance ground truth slice by
    // slice: which slices were flagged (and on which attempt), why
    // each re-image happened, and how every slice was resolved.
    const auto vol = makeScene();
    const auto params = sceneParams();
    scope::FaultParams faults;
    faults.enabled = true; // documented default rates
    scope::RecoveryParams recovery;

    const auto robust = scope::acquireRobust(vol, params, faults,
                                             recovery, 42);
    const auto &prov = robust.stack.provenance;
    ASSERT_EQ(robust.audit.size(), prov.size());

    size_t retried = 0, interpolated = 0, unrecoverable = 0;
    for (size_t s = 0; s < robust.audit.size(); ++s) {
        const auto &d = robust.audit[s];
        EXPECT_EQ(d.slice, s);
        EXPECT_EQ(d.injectedFault, prov[s].injectedFault);
        ASSERT_EQ(d.attempts.size(), prov[s].attempts)
            << "slice " << s;
        // Whether slice s was flagged — and the flags saying why —
        // must match the first-attempt truth in the provenance.
        EXPECT_EQ(d.attempts.front().metrics.flags != 0,
                  prov[s].firstAttemptFlagged)
            << "slice " << s;
        EXPECT_EQ(d.attempts.front().metrics.flags,
                  prov[s].firstAttemptFlags)
            << "slice " << s;
        // A re-image happens only after a flagged, unaccepted
        // attempt, so every non-final attempt must record both.
        for (size_t a = 0; a + 1 < d.attempts.size(); ++a) {
            EXPECT_NE(d.attempts[a].metrics.flags, 0u)
                << "slice " << s << " attempt " << a;
            EXPECT_FALSE(d.attempts[a].accepted);
        }
        EXPECT_EQ(d.attempts.back().accepted, d.accepted);
        EXPECT_EQ(d.accepted, prov[s].accepted);
        EXPECT_EQ(d.interpolated, prov[s].interpolated);
        retried += d.attempts.size() > 1 ? 1 : 0;
        interpolated += d.interpolated ? 1 : 0;
        unrecoverable += d.unrecoverable ? 1 : 0;
    }
    EXPECT_EQ(retried, robust.slicesRetried);
    EXPECT_EQ(interpolated, robust.slicesInterpolated);
    EXPECT_EQ(unrecoverable, robust.slicesUnrecoverable);
}

TEST(QcAudit, JsonExportNamesSlicesFaultsAndFlags)
{
    // Budget-exhausting skip faults guarantee retries and
    // interpolations show up in the export.
    const auto vol = makeScene();
    const auto params = sceneParams();
    scope::FaultParams faults;
    faults.enabled = true;
    faults.curtainingProbability = 0.0;
    faults.chargingProbability = 0.0;
    faults.focusLossProbability = 0.0;
    faults.dropoutProbability = 0.0;
    faults.sliceSkipProbability = 0.25;
    faults.driftExcursionProbability = 0.0;
    faults.skipOvershootSlices = 4;
    scope::RecoveryParams recovery;
    recovery.maxRetries = 2;

    const auto robust = scope::acquireRobust(vol, params, faults,
                                             recovery, 77);
    ASSERT_GT(robust.slicesInterpolated, 0u);

    const std::string json = scope::qcAuditJson(robust.audit);
    EXPECT_NE(json.find("\"slices\":["), std::string::npos);
    EXPECT_NE(json.find("\"injected_fault\":\"slice-skip\""),
              std::string::npos);
    EXPECT_NE(json.find("\"interpolated\":true"), std::string::npos);
    EXPECT_NE(json.find("\"attempt\":"), std::string::npos);
    EXPECT_NE(json.find("\"snr\":"), std::string::npos);
    // Every slice appears exactly once.
    for (size_t s = 0; s < robust.audit.size(); ++s) {
        const std::string key = "\"slice\":" + std::to_string(s) + ",";
        const size_t first = json.find(key);
        ASSERT_NE(first, std::string::npos) << key;
        EXPECT_EQ(json.find(key, first + 1), std::string::npos)
            << key;
    }
    // The audit itself is seed-pure (same seed, any thread count).
    common::ScopedThreads eight(8);
    const auto again = scope::acquireRobust(vol, params, faults,
                                            recovery, 77);
    EXPECT_EQ(scope::qcAuditJson(again.audit), json);
}

} // namespace
