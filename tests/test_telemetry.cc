/**
 * @file
 * Observability-layer tests (ISSUE 4): the metrics registry and its
 * histogram bucket arithmetic, span tracing and Chrome-trace export,
 * the trace validator, the logging upgrades (Debug level, pluggable
 * sink, subsystem-tagged warning counters), and the headline
 * determinism contract — a seeded pipeline report is bitwise
 * identical with telemetry on or off, at 1/2/8 threads.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/log.hh"
#include "common/parallel.hh"
#include "common/telemetry.hh"
#include "core/pipeline.hh"
#include "scope/fib.hh"

namespace
{

using namespace hifi;

// ---- Metrics registry ----------------------------------------------

TEST(Metrics, CounterAndGaugeRoundTrip)
{
    auto &c = telemetry::registry().counter("test.counter.roundtrip");
    const uint64_t before = c.value();
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), before + 42);
    // Same name, same instrument.
    EXPECT_EQ(&telemetry::registry().counter("test.counter.roundtrip"),
              &c);

    auto &g = telemetry::registry().gauge("test.gauge.roundtrip");
    g.set(2.5);
    EXPECT_DOUBLE_EQ(g.value(), 2.5);
    g.set(-1.0);
    EXPECT_DOUBLE_EQ(g.value(), -1.0);
}

TEST(Metrics, HistogramBucketEdgeCases)
{
    auto &h = telemetry::registry().histogram("test.hist.edges",
                                              {1.0, 4.0, 16.0});
    ASSERT_EQ(h.edges(), (std::vector<double>{1.0, 4.0, 16.0}));

    h.observe(0.0);   // below the first edge -> bucket 0
    h.observe(1.0);   // exactly on an edge counts in that bucket
    h.observe(1.5);   // bucket 1 (<= 4)
    h.observe(4.0);   // edge again -> bucket 1
    h.observe(16.0);  // last edge -> bucket 2
    h.observe(17.0);  // above the last edge -> overflow bucket
    h.observe(-3.0);  // negatives land in the first bucket

    const auto counts = h.bucketCounts();
    ASSERT_EQ(counts.size(), 4u);
    EXPECT_EQ(counts[0], 3u); // 0.0, 1.0, -3.0
    EXPECT_EQ(counts[1], 2u); // 1.5, 4.0
    EXPECT_EQ(counts[2], 1u); // 16.0
    EXPECT_EQ(counts[3], 1u); // 17.0
    EXPECT_EQ(h.count(), 7u);
    EXPECT_DOUBLE_EQ(h.sum(), 0.0 + 1.0 + 1.5 + 4.0 + 16.0 + 17.0 -
                     3.0);
}

TEST(Metrics, HistogramSortsAndDeduplicatesEdges)
{
    auto &h = telemetry::registry().histogram(
        "test.hist.dedupe", {8.0, 2.0, 8.0, 2.0});
    EXPECT_EQ(h.edges(), (std::vector<double>{2.0, 8.0}));
    h.observe(5.0);
    const auto counts = h.bucketCounts();
    // Sized for the pre-dedupe edge list; extra slots stay zero.
    ASSERT_GE(counts.size(), 3u);
    EXPECT_EQ(counts[1], 1u);

    // Re-registration with different edges keeps the first layout.
    auto &again = telemetry::registry().histogram(
        "test.hist.dedupe", {1.0, 2.0, 3.0, 4.0, 5.0});
    EXPECT_EQ(&again, &h);
    EXPECT_EQ(again.edges(), (std::vector<double>{2.0, 8.0}));
}

TEST(Metrics, SnapshotDeltaSubtractsBaseline)
{
    auto &c = telemetry::registry().counter("test.delta.counter");
    auto &h = telemetry::registry().histogram("test.delta.hist",
                                              {10.0});
    c.add(5);
    h.observe(3.0);
    const auto baseline = telemetry::registry().snapshot();
    c.add(7);
    h.observe(4.0);
    h.observe(40.0);
    const auto delta =
        telemetry::registry().snapshot().since(baseline);
    EXPECT_EQ(delta.counters.at("test.delta.counter"), 7u);
    const auto &dh = delta.histograms.at("test.delta.hist");
    EXPECT_EQ(dh.count, 2u);
    ASSERT_EQ(dh.buckets.size(), 2u);
    EXPECT_EQ(dh.buckets[0], 1u);
    EXPECT_EQ(dh.buckets[1], 1u);
    EXPECT_DOUBLE_EQ(dh.sum, 44.0);
}

// ---- Span tracing and export ---------------------------------------

TEST(Spans, DisabledByDefaultAndRecordsNothing)
{
    ASSERT_FALSE(telemetry::enabled());
    {
        const telemetry::Span span("should.not.appear");
    }
    telemetry::Session session;
    const auto collected = session.finish({});
    ASSERT_TRUE(collected != nullptr);
    for (const auto &s : collected->spans)
        EXPECT_STRNE(s.name, "should.not.appear");
    EXPECT_FALSE(telemetry::enabled());
}

TEST(Spans, NestedSpansExportAsWellFormedChromeTrace)
{
    telemetry::Session session;
    EXPECT_TRUE(telemetry::enabled());
    {
        const telemetry::Span outer("test.outer");
        {
            const telemetry::Span inner("test.inner");
            const telemetry::Span innermost("test.innermost");
        }
        const telemetry::Span sibling("test.sibling");
    }
    const auto collected = session.finish({});
    EXPECT_FALSE(telemetry::enabled());
    ASSERT_TRUE(collected != nullptr);
    ASSERT_EQ(collected->spans.size(), 4u);

    // Depths recorded relative to each span's nesting level.
    uint32_t outer_depth = 0, inner_depth = 0, innermost_depth = 0;
    for (const auto &s : collected->spans) {
        if (std::strcmp(s.name, "test.outer") == 0)
            outer_depth = s.depth;
        else if (std::strcmp(s.name, "test.inner") == 0)
            inner_depth = s.depth;
        else if (std::strcmp(s.name, "test.innermost") == 0)
            innermost_depth = s.depth;
    }
    EXPECT_EQ(inner_depth, outer_depth + 1);
    EXPECT_EQ(innermost_depth, outer_depth + 2);

    // Aggregated wall time covers every name.
    EXPECT_EQ(collected->stageWallNs.size(), 4u);
    EXPECT_EQ(collected->stageWallNs.at("test.outer").count, 1u);

    // The export passes the validator, including nesting checks.
    std::string error;
    telemetry::TraceCheckOptions options;
    options.minDistinctNames = 4;
    options.requiredPrefixes = {"test."};
    telemetry::TraceStats stats;
    EXPECT_TRUE(telemetry::validateChromeTrace(
        collected->traceJson(), options, &error, &stats))
        << error;
    EXPECT_EQ(stats.events, 4u);
    EXPECT_EQ(stats.distinctNames, 4u);

    // The metrics export is syntactically sane too.
    const std::string metrics = collected->metricsJson();
    EXPECT_NE(metrics.find("\"counters\""), std::string::npos);
    EXPECT_NE(metrics.find("\"stage_wall_ns\""), std::string::npos);
    EXPECT_NE(metrics.find("\"test.outer\""), std::string::npos);
}

TEST(Spans, SecondSessionStartsClean)
{
    {
        telemetry::Session first;
        const telemetry::Span span("test.stale");
        // Abandon without finish(): the destructor disables.
    }
    EXPECT_FALSE(telemetry::enabled());
    telemetry::Session second;
    const auto collected = second.finish({});
    for (const auto &s : collected->spans)
        EXPECT_STRNE(s.name, "test.stale");
}

// ---- Trace validator negative cases --------------------------------

TEST(TraceCheck, RejectsMalformedDocuments)
{
    std::string error;
    EXPECT_FALSE(telemetry::validateChromeTrace("not json", {},
                                                &error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(telemetry::validateChromeTrace("{}", {}, &error));
    EXPECT_FALSE(telemetry::validateChromeTrace(
        "{\"traceEvents\": 3}", {}, &error));
    // Event missing its duration.
    EXPECT_FALSE(telemetry::validateChromeTrace(
        "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"X\","
        "\"ts\":0,\"pid\":1,\"tid\":1}]}",
        {}, &error));
    // Wrong phase type.
    EXPECT_FALSE(telemetry::validateChromeTrace(
        "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"B\",\"ts\":0,"
        "\"dur\":1,\"pid\":1,\"tid\":1}]}",
        {}, &error));
}

TEST(TraceCheck, RejectsPartialOverlapAcceptsNesting)
{
    // a: [0, 10], b: [5, 15] on one thread — partial overlap.
    const std::string overlapping =
        "{\"traceEvents\":["
        "{\"name\":\"a\",\"ph\":\"X\",\"ts\":0,\"dur\":10,"
        "\"pid\":1,\"tid\":1},"
        "{\"name\":\"b\",\"ph\":\"X\",\"ts\":5,\"dur\":10,"
        "\"pid\":1,\"tid\":1}]}";
    std::string error;
    EXPECT_FALSE(telemetry::validateChromeTrace(overlapping, {},
                                                &error));
    EXPECT_NE(error.find("overlap"), std::string::npos);

    // Same intervals on different threads: fine.
    const std::string cross_thread =
        "{\"traceEvents\":["
        "{\"name\":\"a\",\"ph\":\"X\",\"ts\":0,\"dur\":10,"
        "\"pid\":1,\"tid\":1},"
        "{\"name\":\"b\",\"ph\":\"X\",\"ts\":5,\"dur\":10,"
        "\"pid\":1,\"tid\":2}]}";
    EXPECT_TRUE(telemetry::validateChromeTrace(cross_thread, {},
                                               &error))
        << error;

    // Proper containment passes; the name floor and prefixes bite.
    const std::string nested =
        "{\"traceEvents\":["
        "{\"name\":\"a\",\"ph\":\"X\",\"ts\":0,\"dur\":10,"
        "\"pid\":1,\"tid\":1},"
        "{\"name\":\"b\",\"ph\":\"X\",\"ts\":2,\"dur\":3,"
        "\"pid\":1,\"tid\":1}]}";
    EXPECT_TRUE(telemetry::validateChromeTrace(nested, {}, &error))
        << error;
    telemetry::TraceCheckOptions strict;
    strict.minDistinctNames = 3;
    EXPECT_FALSE(telemetry::validateChromeTrace(nested, strict,
                                                &error));
    strict.minDistinctNames = 1;
    strict.requiredPrefixes = {"solver"};
    EXPECT_FALSE(telemetry::validateChromeTrace(nested, strict,
                                                &error));
    EXPECT_NE(error.find("solver"), std::string::npos);
}

// ---- Logging upgrades ----------------------------------------------

TEST(Log, DebugLevelAndCaptureSink)
{
    common::setLogLevel(common::LogLevel::Inform);
    {
        common::CaptureLog capture;
        common::debug("invisible at Inform");
        common::inform("visible");
        auto msgs = capture.messages();
        ASSERT_EQ(msgs.size(), 1u);
        EXPECT_EQ(msgs[0].level, common::LogLevel::Inform);
        EXPECT_NE(msgs[0].message.find("visible"),
                  std::string::npos);
    }
    common::setLogLevel(common::LogLevel::Debug);
    {
        common::CaptureLog capture;
        common::debug("now visible");
        auto msgs = capture.messages();
        ASSERT_EQ(msgs.size(), 1u);
        EXPECT_EQ(msgs[0].level, common::LogLevel::Debug);
    }
    common::setLogLevel(common::LogLevel::Silent);
}

TEST(Log, TimestampsPrefixMessages)
{
    common::setLogLevel(common::LogLevel::Inform);
    common::setLogTimestamps(true);
    common::CaptureLog capture;
    common::inform("stamped");
    common::setLogTimestamps(false);
    common::inform("bare");
    common::setLogLevel(common::LogLevel::Silent);

    const auto msgs = capture.messages();
    ASSERT_EQ(msgs.size(), 2u);
    // "YYYY-MM-DD HH:MM:SS.mmm " prefix, then the level tag.
    EXPECT_TRUE(std::isdigit(
        static_cast<unsigned char>(msgs[0].message.front())));
    EXPECT_NE(msgs[0].message.find("info: stamped"),
              std::string::npos);
    EXPECT_EQ(msgs[1].message, "info: bare");
}

TEST(Log, SubsystemWarningsFeedTheMetricsRegistry)
{
    const size_t total_before = common::warnCount();
    const uint64_t tagged_before =
        telemetry::registry().counter("log.warnings.testsub").value();

    common::CaptureLog capture; // swallow the output
    common::setLogLevel(common::LogLevel::Warn);
    common::warn("plain warning");
    common::warn("testsub", "tagged warning");
    common::setLogLevel(common::LogLevel::Silent);
    common::warn("testsub", "counted even when silenced");

    EXPECT_EQ(common::warnCount(), total_before + 3);
    EXPECT_EQ(telemetry::registry()
                  .counter("log.warnings.testsub")
                  .value(),
              tagged_before + 2);

    // The tagged warning printed with its subsystem prefix.
    bool found = false;
    for (const auto &m : capture.messages())
        if (m.message.find("[testsub]") != std::string::npos)
            found = true;
    EXPECT_TRUE(found);
}

// ---- The determinism contract on the full pipeline -----------------

/**
 * Bit-exact signature of everything seed-derived in a report.
 * Doubles are rendered from their bit patterns, so two signatures
 * match iff the numeric results are bitwise identical; the telemetry
 * attachment itself is deliberately excluded (it is wall-clock, not
 * seed, data).
 */
std::string
reportSignature(const core::PipelineReport &r)
{
    std::string sig;
    auto bits = [&sig](double v) {
        uint64_t u;
        std::memcpy(&u, &v, sizeof(u));
        char buf[24];
        std::snprintf(buf, sizeof(buf), "%016llx|",
                      static_cast<unsigned long long>(u));
        sig += buf;
    };
    auto num = [&sig](uint64_t v) {
        sig += std::to_string(v) + "|";
    };
    sig += r.chipId + "|";
    num(static_cast<uint64_t>(r.trueTopology));
    num(static_cast<uint64_t>(r.extractedTopology));
    num(r.topologyCorrect);
    num(r.trueCommonGateStrips);
    num(r.extractedCommonGateStrips);
    num(r.trueDevices);
    num(r.extractedDevices);
    num(r.bitlinesFound);
    num(r.bitlinesTrue);
    num(r.crossCouplingConsistent);
    sig += r.matchedTemplate + "|";
    bits(r.matchScore);
    num(r.slices);
    bits(r.alignmentResidualPx);
    num(r.alignmentBudgetMet);
    for (const auto &[role, rec] : r.roles) {
        num(static_cast<uint64_t>(role));
        bits(rec.trueW);
        bits(rec.trueL);
        bits(rec.measuredW);
        bits(rec.measuredL);
    }
    bits(r.maxDimErrorNm);
    num(r.slicesRetried);
    num(r.retries);
    num(r.slicesInterpolated);
    for (const size_t s : r.interpolatedSlices)
        num(s);
    num(r.slicesUnrecoverable);
    num(r.faultsInjected);
    num(r.faultsDetected);
    bits(r.qcConfidence);
    num(r.degraded);
    bits(r.campaign.totalHours);
    bits(r.campaign.retryHours);
    num(r.campaign.reimagedSlices);
    num(r.analysis.devices.size());
    num(r.analysis.bitlines.size());
    num(r.analysis.commonGateStrips);
    num(static_cast<uint64_t>(r.analysis.topology));
    // The audit trail renders every QC metric at %.17g — enough to
    // round-trip a double exactly.
    sig += scope::qcAuditJson(r.qcAudit);
    return sig;
}

TEST(PipelineTelemetry, ReportBitwiseIdenticalOnOffAt128Threads)
{
    // The acceptance bar of ISSUE 4: with a fixed seed the report is
    // a pure function of the seed — telemetry on or off, 1/2/8
    // threads, always the same bits.
    core::PipelineConfig config;
    config.chipId = "C5";
    config.pairs = 2;
    config.seed = 23;
    config.faults.enabled = true;
    config.faults = config.faults.scaled(2.0);
    config.faults.enabled = true;

    config.threads = 1;
    config.telemetry.enabled = false;
    const auto golden = core::runPipeline(config);
    EXPECT_TRUE(golden.telemetry == nullptr);
    const std::string want = reportSignature(golden);
    EXPECT_FALSE(golden.qcAudit.empty());

    for (const size_t threads : {1u, 2u, 8u}) {
        for (const bool telem : {false, true}) {
            if (threads == 1 && !telem)
                continue; // the golden run
            config.threads = threads;
            config.telemetry.enabled = telem;
            const auto report = core::runPipeline(config);
            EXPECT_EQ(reportSignature(report), want)
                << "threads=" << threads << " telemetry=" << telem;
            EXPECT_EQ(report.telemetry != nullptr, telem);
        }
    }
    EXPECT_FALSE(telemetry::enabled());
}

TEST(PipelineTelemetry, TraceCoversThePipelineStages)
{
    core::PipelineConfig config;
    config.chipId = "C5";
    config.pairs = 2;
    config.seed = 7;
    config.faults.enabled = true;
    config.telemetry.enabled = true;

    const auto report = core::runPipeline(config);
    ASSERT_TRUE(report.telemetry != nullptr);
    const auto &t = *report.telemetry;
    EXPECT_FALSE(t.spans.empty());

    // The acceptance criterion: >= 10 distinct span names covering
    // the fab / scope / image / re stages, and the trace validates
    // as a well-formed, properly nested Chrome trace.
    std::string error;
    telemetry::TraceCheckOptions options;
    options.minDistinctNames = 10;
    options.requiredPrefixes = {"pipeline", "fab", "scope", "image",
                                "re"};
    telemetry::TraceStats stats;
    EXPECT_TRUE(telemetry::validateChromeTrace(t.traceJson(), options,
                                               &error, &stats))
        << error;

    // Per-stage accounting: pipeline.run exists, ran once, and its
    // wall time bounds every sub-stage on the same thread.
    ASSERT_TRUE(t.stageWallNs.count("pipeline.run"));
    EXPECT_EQ(t.stageWallNs.at("pipeline.run").count, 1u);
    for (const char *stage :
         {"fab.build_region", "fab.voxelize", "scope.acquire",
          "scope.sem_image", "image.qc", "scope.postprocess",
          "image.denoise", "image.register", "image.assemble",
          "re.analyze", "re.segmentation", "re.topology_match"}) {
        EXPECT_TRUE(t.stageWallNs.count(stage)) << stage;
    }
    EXPECT_GE(t.stageWallNs.at("pipeline.run").wallNs,
              t.stageWallNs.at("scope.acquire").wallNs);

    // QC decision counters landed with fault-kind tags, and their
    // totals agree with the report's own accounting.
    uint64_t accepts = 0;
    for (const auto &[name, v] : t.metrics.counters)
        if (name.rfind("qc.accept.", 0) == 0)
            accepts += v;
    uint64_t accepted_slices = 0;
    for (const auto &d : report.qcAudit)
        accepted_slices += d.accepted ? 1 : 0;
    EXPECT_EQ(accepts, accepted_slices);

    // Pool instrumentation flowed into the same export.
    EXPECT_TRUE(t.metrics.counters.count("pool.jobs"));
    EXPECT_GT(t.metrics.counters.at("pool.jobs"), 0u);
}

// ---- Concurrent sessions -------------------------------------------

namespace concurrent_sessions
{

/**
 * The seed-deterministic portion of a run's telemetry: how many times
 * each span name fired, and every counter delta that is a pure
 * function of the seed (timing counters, which end in "_ns", are
 * excluded).  Two runs of the same config must agree on this
 * signature no matter what ran beside them.
 */
struct Signature
{
    std::map<std::string, size_t> spanCounts;
    std::map<std::string, uint64_t> counters;

    bool operator==(const Signature &o) const
    {
        return spanCounts == o.spanCounts && counters == o.counters;
    }
};

Signature
signatureOf(const core::PipelineReport &report)
{
    Signature sig;
    EXPECT_TRUE(report.telemetry != nullptr);
    if (!report.telemetry)
        return sig;
    for (const auto &span : report.telemetry->spans)
        ++sig.spanCounts[span.name];
    for (const auto &[name, value] :
         report.telemetry->metrics.counters) {
        if (name.size() > 3 &&
            name.compare(name.size() - 3, 3, "_ns") == 0)
            continue;
        sig.counters[name] = value;
    }
    return sig;
}

} // namespace concurrent_sessions

TEST(PipelineTelemetry, ConcurrentSessionsDoNotCrossTalk)
{
    // Two jobs tracing simultaneously (the campaign-service workload)
    // must not interleave spans or corrupt each other's metric
    // deltas: every concurrent report carries exactly the telemetry
    // its solo run carries.  Different seeds make the signatures
    // differ between the jobs, so leakage in either direction shows.
    using concurrent_sessions::Signature;
    using concurrent_sessions::signatureOf;

    core::PipelineConfig config;
    config.chipId = "C5";
    config.pairs = 2;
    config.faults.enabled = true;
    config.telemetry.enabled = true;
    config.threads = 2;

    const uint64_t seeds[2] = {23, 24};
    Signature solo[2];
    for (int i = 0; i < 2; ++i) {
        config.seed = seeds[i];
        const auto run = core::runPipelineChecked(config);
        ASSERT_TRUE(run.ok()) << run.error().message;
        solo[i] = signatureOf(run.value());
        EXPECT_FALSE(solo[i].spanCounts.empty());
    }
    // The two jobs are genuinely distinguishable.
    EXPECT_FALSE(solo[0] == solo[1]);

    Signature concurrent[2];
    std::string errors[2];
    std::vector<std::thread> threads;
    for (int i = 0; i < 2; ++i)
        threads.emplace_back([&, i] {
            core::PipelineConfig mine = config;
            mine.seed = seeds[i];
            const auto run = core::runPipelineChecked(mine);
            if (!run.ok()) {
                errors[i] = run.error().message;
                return;
            }
            concurrent[i] = signatureOf(run.value());
        });
    for (auto &t : threads)
        t.join();

    for (int i = 0; i < 2; ++i) {
        ASSERT_TRUE(errors[i].empty()) << errors[i];
        EXPECT_TRUE(concurrent[i] == solo[i]) << "job " << i;
        // Pinpoint any divergence for the log.
        for (const auto &[name, v] : solo[i].spanCounts)
            EXPECT_EQ(concurrent[i].spanCounts[name], v)
                << "span " << name << " of job " << i;
        for (const auto &[name, v] : solo[i].counters)
            EXPECT_EQ(concurrent[i].counters[name], v)
                << "counter " << name << " of job " << i;
    }
    EXPECT_FALSE(telemetry::enabled());
}

} // namespace
