/**
 * @file
 * Tests for the architecture-level latency model and the cost-benefit
 * audit.
 */

#include <gtest/gtest.h>

#include "arch/latency_model.hh"
#include "models/papers.hh"

namespace
{

using namespace hifi;
using arch::StreamParams;
using dram::Timings;

Timings
testTimings()
{
    return {10.0, 30.0, 12.0, 4.0, 8.0};
}

TEST(LatencyModel, PureHitsPayOnlyColumnAccess)
{
    StreamParams s;
    s.rowHitRate = 1.0;
    const double lat = arch::averageReadLatencyNs(testTimings(), s);
    EXPECT_NEAR(lat, 4.0, 1e-9);
}

TEST(LatencyModel, PureConflictsPayFullCycle)
{
    StreamParams s;
    s.rowHitRate = 0.0;
    const double lat = arch::averageReadLatencyNs(testTimings(), s);
    EXPECT_NEAR(lat, 12.0 + 10.0 + 4.0, 1e-9);
}

TEST(LatencyModel, LatencyInterpolatesWithHitRate)
{
    StreamParams s;
    s.rowHitRate = 0.5;
    s.accesses = 200000;
    const double lat = arch::averageReadLatencyNs(testTimings(), s);
    EXPECT_NEAR(lat, 0.5 * 4.0 + 0.5 * 26.0, 0.2);
    EXPECT_THROW(arch::averageReadLatencyNs(testTimings(),
                                            {0, 0.5, 512, 1}),
                 std::invalid_argument);
}

TEST(LatencyModel, FasterTimingsNeverHurt)
{
    StreamParams s;
    s.rowHitRate = 0.6;
    const double base = arch::averageReadLatencyNs(testTimings(), s);
    Timings fast = testTimings();
    fast.tRcd *= 0.5;
    EXPECT_LT(arch::averageReadLatencyNs(fast, s), base);
}

TEST(CostBenefit, MechanismsCoverLatencyPapers)
{
    const auto &mechs = arch::latencyMechanisms();
    EXPECT_GE(mechs.size(), 5u);
    for (const auto &m : mechs) {
        // Every mechanism maps to an audited Table II paper.
        EXPECT_NO_THROW(models::paper(m.paper)) << m.paper;
        EXPECT_GE(m.coverage, 0.0);
        EXPECT_LE(m.coverage, 1.0);
    }
}

TEST(CostBenefit, GainsPositiveAndCorrectionReordersClrDram)
{
    const auto baseline = testTimings();
    StreamParams s;
    s.rowHitRate = 0.6;
    const auto audit = arch::costBenefitAudit(baseline, s);
    ASSERT_GE(audit.size(), 5u);

    const arch::CostBenefit *clr = nullptr, *rbdec = nullptr;
    for (const auto &cb : audit) {
        EXPECT_GT(cb.latencyGain, 0.0) << cb.paper;
        EXPECT_LT(cb.improvedLatencyNs, cb.baselineLatencyNs);
        EXPECT_GT(cb.correctedOverhead, 0.0);
        if (cb.paper == "CLR-DRAM")
            clr = &cb;
        if (cb.paper == "R.B. DEC.")
            rbdec = &cb;
    }
    ASSERT_NE(clr, nullptr);
    ASSERT_NE(rbdec, nullptr);

    // CLR-DRAM (hit by I2) loses over 90% of its gain-per-area when
    // the corrected overhead is applied; R.B. DEC. survives.
    EXPECT_LT(clr->gainPerAreaCorrected,
              0.1 * clr->gainPerAreaClaimed);
    EXPECT_GT(rbdec->gainPerAreaCorrected,
              0.5 * rbdec->gainPerAreaClaimed);
}

TEST(CostBenefit, CorrectedOverheadConsistentWithTableTwo)
{
    // corrected = claimed * (1 + error-ish averaged over all chips).
    const auto audit =
        arch::costBenefitAudit(testTimings(), {20000, 0.6, 512, 1});
    for (const auto &cb : audit) {
        if (cb.paper == "CLR-DRAM") {
            // Table II: ~22x error on DDR4, ~21x porting: corrected
            // is over 20x the claim.
            EXPECT_GT(cb.correctedOverhead,
                      15.0 * cb.claimedOverhead);
        }
    }
}

} // namespace
