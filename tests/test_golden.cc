/**
 * @file
 * Golden-number regression tests pinning the paper's headline
 * aggregates (Fig. 12, Appendix A).  These guard the evaluation layer
 * against silent drift: any change to the chip tables, the public
 * model tables, or the error arithmetic that moves a headline number
 * fails loudly here.
 *
 * Each golden constant below is the value the current tables produce,
 * with the corresponding paper headline noted alongside.  Tolerances
 * are tight (the computation is deterministic); they exist only to
 * absorb benign FP reassociation across compilers.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "eval/bitline_ext.hh"
#include "eval/model_accuracy.hh"
#include "models/chip_data.hh"

namespace
{

using namespace hifi;

constexpr double kTol = 1e-4;

/// Fig. 12 aggregates keyed by "MODEL/ddrN".
std::map<std::string, eval::ModelAccuracy>
fig12ByKey()
{
    std::map<std::string, eval::ModelAccuracy> out;
    for (const auto &acc : eval::fig12Summary())
        out[acc.model + "/ddr" + std::to_string(acc.ddr)] = acc;
    return out;
}

TEST(Golden, Fig12CrowDdr4Aggregates)
{
    const auto fig12 = fig12ByKey();
    ASSERT_TRUE(fig12.count("CROW/ddr4"));
    const auto &crow = fig12.at("CROW/ddr4");

    // Paper: CROW's average W/L error on DDR4 is ~236%.
    EXPECT_NEAR(crow.avgWl, 2.381211, kTol);
    // Paper: CROW overestimates one width by ~9x (938%).
    EXPECT_NEAR(crow.maxW, 9.362694, kTol);
    EXPECT_EQ(crow.maxWAt, "C4.precharge");
    // Paper: worst W/L error ~562%.
    EXPECT_NEAR(crow.maxWl, 5.678181, kTol);
    EXPECT_EQ(crow.maxWlAt, "C4.precharge");
    // Paper: CROW's average width error ~271%.
    EXPECT_NEAR(crow.avgW, 2.611720, kTol);
}

TEST(Golden, Fig12RemDdr4Aggregates)
{
    const auto fig12 = fig12ByKey();
    ASSERT_TRUE(fig12.count("REM/ddr4"));
    const auto &rem = fig12.at("REM/ddr4");

    // Paper: REM's average length error on DDR4 is ~31%.
    EXPECT_NEAR(rem.avgL, 0.292305, kTol);
    // Paper: REM's worst length error ~101% (here exactly 100%).
    EXPECT_NEAR(rem.maxL, 1.0, kTol);
    EXPECT_EQ(rem.maxLAt, "C4.equalizer");
    EXPECT_NEAR(rem.avgWl, 0.226717, kTol);
}

TEST(Golden, Fig12RemBeatsCrowOnWl)
{
    // Section VI-A: REM is closer to silicon than CROW on W/L for
    // both generations.
    const auto fig12 = fig12ByKey();
    for (const int ddr : {4, 5}) {
        const std::string gen = "/ddr" + std::to_string(ddr);
        ASSERT_TRUE(fig12.count("CROW" + gen));
        ASSERT_TRUE(fig12.count("REM" + gen));
        EXPECT_LT(fig12.at("REM" + gen).avgWl,
                  fig12.at("CROW" + gen).avgWl)
            << "ddr" << ddr;
    }
}

TEST(Golden, Fig12PortabilityWorsensOnDdr5)
{
    // Both DDR4-era models degrade when applied to the DDR5 chips —
    // the portability caveat of Section VI-A.
    const auto fig12 = fig12ByKey();
    EXPECT_GT(fig12.at("CROW/ddr5").avgWl,
              fig12.at("CROW/ddr4").avgWl);
    EXPECT_GT(fig12.at("REM/ddr5").avgWl,
              fig12.at("REM/ddr4").avgWl);
    EXPECT_NEAR(fig12.at("CROW/ddr5").avgWl, 3.506720, kTol);
    EXPECT_NEAR(fig12.at("REM/ddr5").avgWl, 0.337463, kTol);
}

TEST(Golden, AppendixAEq1Extension)
{
    // Eq. 1 nominal case (B_w = 2 d): doubling the bitlines extends
    // the SA region by exactly 1/3 — the paper's "33%".
    EXPECT_DOUBLE_EQ(eval::bitlineDoublingExtension(), 1.0 / 3.0);
    EXPECT_NEAR(eval::bitlineDoublingExtension(), 0.333333, kTol);
}

TEST(Golden, AppendixAChipOverheadOnB5)
{
    // Paper: chip-level overhead of the extension is ~21% on B5.
    const double overhead =
        eval::bitlineDoublingChipOverhead(models::chip("B5"));
    EXPECT_NEAR(overhead, 0.221482, kTol);
    EXPECT_GT(overhead, 0.20);
    EXPECT_LT(overhead, 0.25);
}

} // namespace
