/**
 * @file
 * Tests for the reverse-engineering module: segmentation, connected
 * components, sub-pixel measurement, the analysis on clean volumes,
 * and the 835-measurement campaign.
 */

#include <gtest/gtest.h>

#include "fab/mat.hh"
#include "fab/sa_region.hh"
#include "layout/gdsii.hh"
#include "fab/voxelizer.hh"
#include "re/analyze.hh"
#include "re/mat_analyze.hh"
#include "re/measure.hh"
#include "re/gds_pipeline.hh"
#include "re/layout_export.hh"
#include "re/netlist_build.hh"
#include "re/topology_match.hh"
#include "re/segmentation.hh"
#include "scope/sem.hh"

namespace
{

using namespace hifi;
using image::Image2D;
using models::Detector;
using models::Role;
using models::Topology;

TEST(Segmentation, MaterialMaskBinaryThreshold)
{
    Image2D img(4, 1, 0.0f);
    img.at(0, 0) = 0.05f; // oxide-ish
    img.at(1, 0) = 0.65f; // copper-ish (SE: 0.92, threshold 0.52)
    img.at(2, 0) = 0.95f;
    img.at(3, 0) = 0.40f;
    const auto mask = re::materialMask(img, fab::Material::Copper,
                                       Detector::Se);
    EXPECT_FLOAT_EQ(mask.at(0, 0), 0.0f);
    EXPECT_FLOAT_EQ(mask.at(1, 0), 1.0f);
    EXPECT_FLOAT_EQ(mask.at(2, 0), 1.0f);
    EXPECT_FLOAT_EQ(mask.at(3, 0), 0.0f);
}

TEST(Segmentation, ConnectedComponentsSeparatesBlobs)
{
    Image2D mask(16, 8, 0.0f);
    mask.fillRect(1, 1, 5, 4, 1.0f);   // 4x3 blob
    mask.fillRect(8, 2, 14, 7, 1.0f);  // 6x5 blob
    mask.at(15, 7) = 1.0f;             // single pixel (filtered)

    const auto comps = re::connectedComponents(mask, 4);
    ASSERT_EQ(comps.size(), 2u);
    EXPECT_EQ(comps[0].width(), 4u);
    EXPECT_EQ(comps[0].height(), 3u);
    EXPECT_EQ(comps[0].pixels, 12u);
    EXPECT_EQ(comps[1].pixels, 30u);
}

TEST(Segmentation, ComponentsAreFourConnected)
{
    // Two diagonal pixels are separate components.
    Image2D mask(4, 4, 0.0f);
    mask.at(1, 1) = 1.0f;
    mask.at(2, 2) = 1.0f;
    EXPECT_EQ(re::connectedComponents(mask, 1).size(), 2u);
}

TEST(Segmentation, MorphologicalOpenRemovesBridges)
{
    // Two blocks joined by a 1-px line: opening cuts the line.
    Image2D mask(20, 9, 0.0f);
    mask.fillRect(0, 0, 6, 9, 1.0f);
    mask.fillRect(14, 0, 20, 9, 1.0f);
    mask.fillRect(6, 4, 14, 5, 1.0f); // bridge (1 px tall)
    EXPECT_EQ(re::connectedComponents(mask, 4).size(), 1u);
    const auto opened = re::morphologicalOpen(mask, 1);
    EXPECT_EQ(re::connectedComponents(opened, 4).size(), 2u);
}

TEST(Segmentation, MorphologicalOpenPreservesWideFeatures)
{
    Image2D mask(10, 10, 0.0f);
    mask.fillRect(2, 2, 8, 8, 1.0f);
    const auto opened = re::morphologicalOpen(mask, 1);
    const auto comps = re::connectedComponents(opened, 4);
    ASSERT_EQ(comps.size(), 1u);
    EXPECT_EQ(comps[0].pixels, 36u);
}

TEST(Segmentation, MeasureRunExactOnSharpEdges)
{
    Image2D img(20, 5, 0.1f);
    img.fillRect(4, 0, 11, 5, 0.9f); // 7 px wide
    const auto mask =
        re::materialMask(img, fab::Material::Copper, Detector::Se);
    EXPECT_NEAR(re::measureRun(img, mask, 7, 2, true), 7.0, 0.05);
}

TEST(Segmentation, MeasureRunInterpolatesSubPixel)
{
    // Feature covering 6.5 px: boundary pixel at half intensity.
    Image2D img(20, 3, 0.1f);
    img.fillRect(4, 0, 10, 3, 0.9f);
    for (size_t y = 0; y < 3; ++y)
        img.at(10, y) = 0.5f; // half-covered pixel
    Image2D mask(20, 3, 0.0f);
    mask.fillRect(4, 0, 11, 3, 1.0f);
    EXPECT_NEAR(re::measureRun(img, mask, 7, 1, true), 6.5, 0.1);
}

TEST(Segmentation, MeasureRunZeroOutsideMask)
{
    Image2D img(8, 8, 0.0f);
    Image2D mask(8, 8, 0.0f);
    EXPECT_DOUBLE_EQ(re::measureRun(img, mask, 3, 3, true), 0.0);
}

TEST(Segmentation, MeasureRunVertical)
{
    Image2D img(5, 20, 0.1f);
    img.fillRect(0, 6, 5, 15, 0.9f);
    Image2D mask(5, 20, 0.0f);
    mask.fillRect(0, 6, 5, 15, 1.0f);
    EXPECT_NEAR(re::measureRun(img, mask, 2, 10, false), 9.0, 0.05);
}

// ---- Analysis on clean (noise-free) volumes --------------------------

class CleanAnalysis : public ::testing::TestWithParam<Topology>
{
  protected:
    re::RegionAnalysis
    analyze(Topology topology, fab::SaRegionTruth &truth) const
    {
        fab::SaRegionSpec spec;
        spec.topology = topology;
        spec.pairs = 3;
        spec.minGapNm = 20.0;
        const auto cell = fab::buildSaRegion(spec, truth);

        fab::VoxelizeParams vox;
        vox.voxelNm = 5.0;
        const auto mats = fab::voxelize(*cell, truth.region, vox);

        // Noise-free imaging at 5 nm everywhere.
        image::Volume3D intensity(mats.nx(), mats.ny(), mats.nz());
        for (size_t z = 0; z < mats.nz(); ++z)
            for (size_t y = 0; y < mats.ny(); ++y)
                for (size_t x = 0; x < mats.nx(); ++x)
                    intensity.at(x, y, z) = static_cast<float>(
                        scope::materialContrast(
                            fab::voxelMaterial(mats.at(x, y, z)),
                            Detector::Se));

        re::PlanarScales scales{5.0, 5.0, 5.0};
        return re::analyzeRegion(intensity, scales, Detector::Se);
    }
};

TEST_P(CleanAnalysis, PerfectRecoveryWithoutNoise)
{
    fab::SaRegionTruth truth;
    const auto analysis = analyze(GetParam(), truth);

    EXPECT_EQ(analysis.topology, GetParam());
    EXPECT_EQ(analysis.commonGateStrips, truth.commonGateComponents);
    EXPECT_EQ(analysis.bitlines.size(), truth.bitlines.size());
    EXPECT_EQ(analysis.devices.size(), truth.devices.size());
    EXPECT_TRUE(analysis.crossCouplingConsistent());

    // Dimension recovery within half a voxel + interpolation slack.
    for (const auto role :
         {Role::Nsa, Role::Psa, Role::Precharge, Role::Column}) {
        const auto dims = analysis.meanDims(role);
        ASSERT_TRUE(dims) << models::roleName(role);
        double tw = 0.0, tl = 0.0;
        size_t n = 0;
        for (const auto &d : truth.devices) {
            if (d.role != role)
                continue;
            const bool latch_like =
                role == Role::Nsa || role == Role::Psa;
            tw += latch_like ? d.gate.width() : d.gate.height();
            tl += latch_like ? d.gate.height() : d.gate.width();
            ++n;
        }
        EXPECT_NEAR(dims->w, tw / n, 6.0) << models::roleName(role);
        EXPECT_NEAR(dims->l, tl / n, 6.0) << models::roleName(role);
    }
}

INSTANTIATE_TEST_SUITE_P(Topologies, CleanAnalysis,
                         ::testing::Values(Topology::Classic,
                                           Topology::Ocsa));

TEST(NetlistBuild, TransfersTopologyAndSizing)
{
    re::RegionAnalysis analysis;
    analysis.topology = Topology::Ocsa;
    analysis.devices.push_back(
        {Role::Nsa, {}, 150.0, 42.0, 0, 1});
    analysis.devices.push_back(
        {Role::Nsa, {}, 154.0, 44.0, 1, 0});
    analysis.devices.push_back({Role::Iso, {}, 52.0, 35.0, 0, 0});

    const auto params = re::saParamsFromAnalysis(analysis);
    EXPECT_EQ(params.topology,
              circuit::SaTopology::OffsetCancellation);
    EXPECT_NEAR(params.sizing.nsaW, 152.0, 1e-9);
    EXPECT_NEAR(params.sizing.nsaL, 43.0, 1e-9);
    EXPECT_NEAR(params.sizing.isoW, 52.0, 1e-9);
    // Roles missing from the analysis keep their defaults.
    circuit::SaParams defaults;
    EXPECT_DOUBLE_EQ(params.sizing.colW, defaults.sizing.colW);
}

TEST(Segmentation, OtsuSeparatesBimodalImage)
{
    Image2D img(40, 20, 0.15f);
    img.fillRect(5, 5, 20, 15, 0.75f);
    const float t = re::otsuThreshold(img);
    EXPECT_GT(t, 0.2f);
    EXPECT_LT(t, 0.75f);
    // All bright pixels above, all dark below.
    EXPECT_GT(img.at(10, 10), t);
    EXPECT_LT(img.at(0, 0), t);
    EXPECT_THROW(re::otsuThreshold(Image2D()), std::invalid_argument);
}

TEST(Segmentation, OtsuFlatImageReturnsItsValue)
{
    Image2D flat(8, 8, 0.4f);
    EXPECT_FLOAT_EQ(re::otsuThreshold(flat), 0.4f);
}

TEST(GdsPipeline, AnalyzesTheOpenSourcedLayoutDirectly)
{
    // Fab a region, export it as GDSII (the paper's artifact), then
    // analyze the file as a downstream user would.
    fab::SaRegionSpec spec;
    spec.topology = Topology::Ocsa;
    spec.pairs = 2;
    spec.minGapNm = 20.0;
    fab::SaRegionTruth truth;
    const auto cell = fab::buildSaRegion(spec, truth);
    layout::writeGdsFile("/tmp/hifi_gds_input.gds", *cell);

    const auto analysis =
        re::analyzeGdsFile("/tmp/hifi_gds_input.gds", 5.0);
    EXPECT_EQ(analysis.topology, Topology::Ocsa);
    EXPECT_EQ(analysis.commonGateStrips, 3u);
    EXPECT_EQ(analysis.bitlines.size(), truth.bitlines.size());
    EXPECT_EQ(analysis.devices.size(), truth.devices.size());
    EXPECT_TRUE(analysis.crossCouplingConsistent());
}

TEST(LayoutExport, ReconstructedLayoutRoundTripsThroughGds)
{
    re::RegionAnalysis analysis;
    analysis.bitlines.push_back({0, 10, 2000, 31});
    analysis.bitlines.push_back({0, 42, 2000, 63});
    re::ExtractedDevice dev;
    dev.role = Role::Nsa;
    dev.gate = {500, 15, 660, 55};
    dev.wNm = 160;
    dev.lNm = 40;
    analysis.devices.push_back(dev);
    re::ExtractedDevice strip;
    strip.role = Role::Precharge;
    strip.gate = {1500, 10, 1533, 60};
    strip.wNm = 48;
    strip.lNm = 33;
    analysis.devices.push_back(strip);

    const auto cell = re::layoutFromAnalysis(analysis, "RE_TEST");
    EXPECT_EQ(cell->countOnLayer(layout::Layer::Metal1), 2u);
    EXPECT_EQ(cell->countOnLayer(layout::Layer::Gate), 2u);
    EXPECT_EQ(cell->countOnLayer(layout::Layer::Active), 2u);

    re::writeAnalysisGds("/tmp/hifi_re_layout.gds", analysis,
                         "RE_TEST");
    const auto back = layout::readGdsFile("/tmp/hifi_re_layout.gds");
    EXPECT_EQ(back.name(), "RE_TEST");
    EXPECT_EQ(back.shapes().size(), cell->flatten().size());
}

// ---- Topology template matching (Section V-A) ---------------------------

TEST(TopologyMatch, LibraryContainsDeployedDesigns)
{
    const auto &lib = re::topologyLibrary();
    ASSERT_GE(lib.size(), 4u);
    bool has_classic = false, has_ocsa = false;
    for (const auto &t : lib) {
        if (t.name == "classic SA")
            has_classic = true;
        if (t.name == "offset-cancellation SA") {
            has_ocsa = true;
            EXPECT_EQ(t.commonGateComponents, 3u);
            EXPECT_FALSE(t.hasEqualizer);
        }
    }
    EXPECT_TRUE(has_classic);
    EXPECT_TRUE(has_ocsa);
}

class TemplateMatchClean : public ::testing::TestWithParam<Topology>
{
};

TEST_P(TemplateMatchClean, PinpointsTheGeneratedDesign)
{
    // Build a clean analysis straight from the generator's truth.
    fab::SaRegionSpec spec;
    spec.topology = GetParam();
    spec.pairs = 3;
    fab::SaRegionTruth truth;
    fab::buildSaRegion(spec, truth);

    re::RegionAnalysis analysis;
    analysis.topology = truth.topology;
    analysis.commonGateStrips = truth.commonGateComponents;
    for (const auto &d : truth.devices) {
        re::ExtractedDevice dev;
        dev.role = d.role;
        dev.wNm = 100;
        dev.lNm = 40;
        dev.bitline = static_cast<long>(d.bitline);
        dev.couplesTo = static_cast<long>(d.couplesTo);
        analysis.devices.push_back(dev);
    }

    const auto scores = re::matchTopology(analysis);
    ASSERT_FALSE(scores.empty());
    const auto &best = *scores.front().candidate;
    EXPECT_EQ(best.family, GetParam());
    EXPECT_EQ(best.name, GetParam() == Topology::Ocsa
                             ? "offset-cancellation SA"
                             : "classic SA");
    EXPECT_GT(scores.front().score, 0.9);
    // And decisively: the runner-up scores clearly lower.
    EXPECT_GT(scores.front().score, scores[1].score + 0.1);
}

INSTANTIATE_TEST_SUITE_P(Both, TemplateMatchClean,
                         ::testing::Values(Topology::Classic,
                                           Topology::Ocsa));

TEST(TopologyMatch, RejectsWrongFamilyWithMismatchNotes)
{
    re::RegionAnalysis analysis;
    analysis.topology = Topology::Ocsa;
    analysis.commonGateStrips = 3;
    for (int pair = 0; pair < 2; ++pair) {
        for (int i = 0; i < 2; ++i) {
            re::ExtractedDevice n;
            n.role = Role::Nsa;
            n.bitline = 2 * pair + i;
            n.couplesTo = 2 * pair + 1 - i;
            analysis.devices.push_back(n);
            re::ExtractedDevice p;
            p.role = Role::Psa;
            p.bitline = 2 * pair + i;
            p.couplesTo = 2 * pair + 1 - i;
            analysis.devices.push_back(p);
        }
        analysis.devices.push_back({Role::Iso, {}, 50, 35, 0, 0});
        analysis.devices.push_back({Role::Oc, {}, 50, 35, 0, 0});
        analysis.devices.push_back(
            {Role::Precharge, {}, 50, 35, 0, 0});
        analysis.devices.push_back({Role::Column, {}, 90, 35, 0, 0});
        analysis.devices.push_back({Role::Column, {}, 90, 35, 1, 1});
    }
    const auto scores = re::matchTopology(analysis);
    // The classic template must carry mismatch notes.
    for (const auto &ms : scores) {
        if (ms.candidate->name == "classic SA") {
            EXPECT_LT(ms.score, scores.front().score);
            EXPECT_FALSE(ms.mismatches.empty());
        }
    }
    EXPECT_EQ(re::bestMatch(analysis).family, Topology::Ocsa);
}

// ---- MAT analysis (Fig. 7a) ----------------------------------------------

TEST(MatAnalysis, RecoversHoneycombCapacitorsAndGrid)
{
    // Clean render of a C5-like MAT slice.
    const auto &chip = models::chip("C5");
    fab::MatSpec spec = fab::MatSpec::fromChip(chip, 8, 12);
    const auto cell = fab::buildMatSlice(spec);

    fab::VoxelizeParams vox;
    vox.voxelNm = 4.0;
    vox.zMaxNm = 280.0;
    const auto mats =
        fab::voxelize(*cell, cell->boundingBox(), vox);
    image::Volume3D intensity(mats.nx(), mats.ny(), mats.nz());
    for (size_t z = 0; z < mats.nz(); ++z)
        for (size_t y = 0; y < mats.ny(); ++y)
            for (size_t x = 0; x < mats.nx(); ++x)
                intensity.at(x, y, z) = static_cast<float>(
                    scope::materialContrast(
                        fab::voxelMaterial(mats.at(x, y, z)),
                        Detector::Bse));

    re::PlanarScales scales{4.0, 4.0, 4.0};
    const auto mat =
        re::analyzeMatRegion(intensity, scales, Detector::Bse);

    EXPECT_EQ(mat.bitlines, 8u);
    EXPECT_EQ(mat.wordlines, 12u);
    EXPECT_EQ(mat.capacitors, 8u * 12u);
    EXPECT_NEAR(mat.blPitchNm, chip.blPitchNm, 3.0);
    EXPECT_TRUE(mat.honeycomb);
    EXPECT_NEAR(mat.rowOffsetNm, chip.blPitchNm / 2.0,
                0.25 * chip.blPitchNm);
}

// ---- Measurement campaign (Section V-B) --------------------------------

TEST(Measure, CampaignHasExactly835Measurements)
{
    const auto campaign = re::measurementCampaign();
    EXPECT_EQ(campaign.totalMeasurements, re::kPaperMeasurements);
}

TEST(Measure, RepeatedMeasurementsClusterAroundNominal)
{
    const auto campaign = re::measurementCampaign(7);
    EXPECT_LT(campaign.meanRelativeError(), 0.10);
    size_t repeated = 0;
    for (const auto &rec : campaign.records) {
        if (rec.samples.count() == 10) {
            ++repeated;
            EXPECT_NEAR(rec.samples.mean(), rec.nominalNm,
                        4.0 * rec.samples.stddev() + 6.0)
                << rec.chipId << " " << rec.target;
        }
    }
    EXPECT_EQ(repeated, 78u); // 39 role instances x 2 dims
}

TEST(Measure, CampaignIsDeterministicPerSeed)
{
    const auto a = re::measurementCampaign(3);
    const auto b = re::measurementCampaign(3);
    ASSERT_EQ(a.records.size(), b.records.size());
    for (size_t i = 0; i < a.records.size(); ++i)
        EXPECT_DOUBLE_EQ(a.records[i].samples.mean(),
                         b.records[i].samples.mean());
}

TEST(Measure, CoversAllSixChips)
{
    const auto campaign = re::measurementCampaign();
    for (const auto &chip : models::allChips()) {
        size_t n = 0;
        for (const auto &rec : campaign.records)
            if (rec.chipId == chip.id)
                ++n;
        EXPECT_GE(n, 10u) << chip.id;
    }
}

} // namespace
