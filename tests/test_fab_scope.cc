/**
 * @file
 * Tests for the virtual fab (SA-region and MAT generators, voxelizer)
 * and the microscope simulator (SEM contrast, FIB acquisition, cost
 * model, ROI search, post-processing).
 */

#include <gtest/gtest.h>

#include <cstring>

#include "common/parallel.hh"
#include "common/rng.hh"
#include "common/simd.hh"
#include "common/telemetry.hh"
#include "fab/defects.hh"
#include "fab/mat.hh"
#include "image/noise.hh"
#include "fab/sa_region.hh"
#include "fab/voxelizer.hh"
#include "scope/fib.hh"
#include "scope/postprocess.hh"
#include "scope/prep.hh"
#include "scope/roi_search.hh"
#include "scope/sem.hh"

namespace
{

using namespace hifi;
using models::Detector;
using models::Role;
using models::Topology;

// ---- fab -------------------------------------------------------------

TEST(SaRegion, SpecFromChipCopiesTopologyAndDims)
{
    const auto spec =
        fab::SaRegionSpec::fromChip(models::chip("A4"), 4);
    EXPECT_EQ(spec.topology, Topology::Ocsa);
    EXPECT_DOUBLE_EQ(spec.nsa.w, 210);
    EXPECT_DOUBLE_EQ(spec.iso.l, 36);
    EXPECT_DOUBLE_EQ(spec.blPitchNm, 39);
}

class SaRegionTopology
    : public ::testing::TestWithParam<models::Topology>
{
};

TEST_P(SaRegionTopology, GeneratesExpectedStructure)
{
    fab::SaRegionSpec spec;
    spec.topology = GetParam();
    spec.pairs = 4;
    fab::SaRegionTruth truth;
    const auto cell = fab::buildSaRegion(spec, truth);

    const bool ocsa = GetParam() == Topology::Ocsa;
    EXPECT_EQ(truth.bitlines.size(), 8u);
    EXPECT_EQ(truth.countRole(Role::Column), 8u);
    EXPECT_EQ(truth.countRole(Role::Nsa), 8u);
    EXPECT_EQ(truth.countRole(Role::Psa), 8u);
    EXPECT_EQ(truth.countRole(Role::Precharge), 4u);
    EXPECT_EQ(truth.countRole(Role::Lsa), 4u);
    EXPECT_EQ(truth.countRole(Role::Iso), ocsa ? 4u : 0u);
    EXPECT_EQ(truth.countRole(Role::Oc), ocsa ? 4u : 0u);
    EXPECT_EQ(truth.countRole(Role::Equalizer), ocsa ? 0u : 4u);
    EXPECT_EQ(truth.commonGateComponents, ocsa ? 3u : 1u);

    // All devices inside the region.
    for (const auto &d : truth.devices) {
        EXPECT_TRUE(truth.region.overlaps(d.gate));
        EXPECT_TRUE(truth.region.overlaps(d.active));
    }
    fab::SaRegionSpec bad;
    bad.pairs = 0;
    EXPECT_THROW(fab::buildSaRegion(bad, truth),
                 std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(Both, SaRegionTopology,
                         ::testing::Values(Topology::Classic,
                                           Topology::Ocsa));

TEST(SaRegion, ColumnsAreFirstAfterTheMat)
{
    // Section V-C: column transistors are the first elements the
    // bitlines meet.
    fab::SaRegionSpec spec;
    spec.pairs = 2;
    fab::SaRegionTruth truth;
    fab::buildSaRegion(spec, truth);

    double col_max = 0.0, others_min = 1e18;
    for (const auto &d : truth.devices) {
        if (d.role == Role::Column)
            col_max = std::max(col_max, d.gate.x1);
        else
            others_min = std::min(others_min, d.gate.x0);
    }
    EXPECT_LT(col_max, others_min);
}

TEST(SaRegion, LatchCrossCouplingRecordedInTruth)
{
    fab::SaRegionSpec spec;
    spec.pairs = 3;
    fab::SaRegionTruth truth;
    fab::buildSaRegion(spec, truth);
    for (const auto &d : truth.devices) {
        if (d.role == Role::Nsa || d.role == Role::Psa) {
            EXPECT_NE(d.bitline, d.couplesTo);
            EXPECT_EQ(d.bitline / 2, d.couplesTo / 2); // same pair
        }
    }
}

TEST(SaRegion, NoDesignRuleOverlapsWithinLayers)
{
    // Distinct-net gates must not overlap each other.
    fab::SaRegionSpec spec;
    spec.pairs = 4;
    fab::SaRegionTruth truth;
    const auto cell = fab::buildSaRegion(spec, truth);
    const auto shapes = cell->flatten();
    for (size_t i = 0; i < shapes.size(); ++i) {
        for (size_t j = i + 1; j < shapes.size(); ++j) {
            const auto &a = shapes[i];
            const auto &b = shapes[j];
            if (a.layer != b.layer ||
                a.layer != layout::Layer::Gate)
                continue;
            if (!a.net.empty() && a.net == b.net)
                continue;
            EXPECT_FALSE(a.rect.overlaps(b.rect))
                << a.net << " vs " << b.net;
        }
    }
}

TEST(Mat, HoneycombCapacitorsAndGrid)
{
    fab::MatSpec spec;
    spec.bitlines = 4;
    spec.wordlines = 6;
    const auto cell = fab::buildMatSlice(spec);
    EXPECT_EQ(cell->countOnLayer(layout::Layer::Metal1), 4u);
    EXPECT_EQ(cell->countOnLayer(layout::Layer::Gate), 6u);
    EXPECT_EQ(cell->countOnLayer(layout::Layer::Capacitor), 24u);

    // Honeycomb: odd-column capacitors offset by half a pitch.
    const auto flat = cell->flatten();
    double even_y = -1.0, odd_y = -1.0;
    for (const auto &s : flat) {
        if (s.layer != layout::Layer::Capacitor)
            continue;
        if (even_y < 0)
            even_y = s.rect.center().y;
        else if (odd_y < 0 && s.rect.center().x > even_y)
            odd_y = s.rect.center().y;
    }
    EXPECT_THROW(fab::buildMatSlice({0, 0}), std::invalid_argument);
}

TEST(Voxelizer, PaintsMaterialsAtLayerHeights)
{
    layout::Cell cell("c");
    cell.addShape(common::Rect(0, 0, 50, 50), layout::Layer::Metal1);
    cell.addShape(common::Rect(0, 0, 50, 50), layout::Layer::Active);

    fab::VoxelizeParams params;
    params.voxelNm = 10.0;
    const auto vol =
        fab::voxelize(cell, common::Rect(0, 0, 100, 100), params);
    EXPECT_EQ(vol.nx(), 10u);
    EXPECT_EQ(vol.ny(), 10u);

    const auto m1z = layout::layerZ(layout::Layer::Metal1);
    const auto z_m1 = static_cast<size_t>((m1z.z0 + 5.0) / 10.0);
    EXPECT_EQ(fab::voxelMaterial(vol.at(2, 2, z_m1)),
              fab::Material::Copper);
    const auto az = layout::layerZ(layout::Layer::Active);
    const auto z_act = static_cast<size_t>((az.z0 + 5.0) / 10.0);
    EXPECT_EQ(fab::voxelMaterial(vol.at(2, 2, z_act)),
              fab::Material::Silicon);
    // Outside the shape: oxide.
    EXPECT_EQ(fab::voxelMaterial(vol.at(8, 8, z_m1)),
              fab::Material::Oxide);
    EXPECT_THROW(fab::voxelize(cell, common::Rect(), params),
                 std::invalid_argument);
}

TEST(Voxelizer, MaterialDecodingClamps)
{
    EXPECT_EQ(fab::voxelMaterial(-3.0f), fab::Material::Oxide);
    EXPECT_EQ(fab::voxelMaterial(99.0f), fab::Material::Oxide);
    EXPECT_EQ(fab::voxelMaterial(1.2f), fab::Material::Silicon);
}

bool
sameVoxels(const image::Volume3D &a, const image::Volume3D &b)
{
    if (a.nx() != b.nx() || a.ny() != b.ny() || a.nz() != b.nz())
        return false;
    for (size_t z = 0; z < a.nz(); ++z)
        for (size_t y = 0; y < a.ny(); ++y)
            for (size_t x = 0; x < a.nx(); ++x) {
                const float av = a.at(x, y, z);
                const float bv = b.at(x, y, z);
                if (std::memcmp(&av, &bv, sizeof(float)) != 0)
                    return false;
            }
    return true;
}

TEST(Voxelizer, CheckedRejectsOutOfBoundsShapes)
{
    layout::Cell cell("c");
    cell.addShape(common::Rect(0, 0, 110, 50),
                  layout::Layer::Metal1); // 10 nm past the bounds
    const common::Rect bounds(0, 0, 100, 100);

    fab::VoxelizeParams params;
    params.voxelNm = 10.0;
    params.outOfBoundsTolNm = 5.0;
    const auto rejected = fab::voxelizeChecked(cell, bounds, params);
    ASSERT_FALSE(rejected.ok());
    EXPECT_EQ(rejected.error().code,
              common::ErrorCode::FailedPrecondition);
    EXPECT_NE(rejected.error().message.find("extends"),
              std::string::npos);

    // Within the tolerance the clip matches the legacy voxelize().
    params.outOfBoundsTolNm = 20.0;
    auto clipped = fab::voxelizeChecked(cell, bounds, params);
    ASSERT_TRUE(clipped.ok());
    const auto legacy = fab::voxelize(cell, bounds, params);
    const auto vol = clipped.takeValue();
    EXPECT_TRUE(sameVoxels(vol, legacy));

    // Invalid inputs are typed errors, not exceptions.
    EXPECT_FALSE(
        fab::voxelizeChecked(cell, common::Rect(), params).ok());
    params.voxelNm = 0.0;
    EXPECT_FALSE(fab::voxelizeChecked(cell, bounds, params).ok());
    params.voxelNm = 10.0;
    params.outOfBoundsTolNm = -1.0;
    EXPECT_FALSE(fab::voxelizeChecked(cell, bounds, params).ok());
}

TEST(Voxelizer, ZeroLerSigmaIsBitIdenticalToCleanRaster)
{
    fab::SaRegionSpec spec;
    spec.pairs = 2;
    fab::SaRegionTruth truth;
    const auto cell = fab::buildSaRegion(spec, truth);

    fab::VoxelizeParams clean;
    clean.voxelNm = 5.0;
    fab::VoxelizeParams ler0 = clean;
    ler0.lerSigmaNm = 0.0;
    ler0.lerSeed = 77; // must not matter at sigma = 0

    const auto a = fab::voxelize(*cell, truth.region, clean);
    const auto b = fab::voxelize(*cell, truth.region, ler0);
    EXPECT_TRUE(sameVoxels(a, b));
}

TEST(Voxelizer, LerRasterIsThreadCountInvariant)
{
    fab::SaRegionSpec spec;
    spec.pairs = 2;
    fab::SaRegionTruth truth;
    const auto cell = fab::buildSaRegion(spec, truth);

    fab::VoxelizeParams params;
    params.voxelNm = 5.0;
    params.lerSigmaNm = 2.0;
    params.lerCorrLenNm = 40.0;
    params.lerSeed = 9;

    image::Volume3D one, many;
    {
        common::ScopedThreads st(1);
        one = fab::voxelize(*cell, truth.region, params);
    }
    {
        common::ScopedThreads st(8);
        many = fab::voxelize(*cell, truth.region, params);
    }
    EXPECT_TRUE(sameVoxels(one, many));
    // And the roughness actually moved some edges.
    params.lerSeed = 10;
    const auto other = fab::voxelize(*cell, truth.region, params);
    EXPECT_FALSE(sameVoxels(one, other));
}

// ---- silicon defects ---------------------------------------------------

TEST(Defects, PlantsRequestedMixInsideTheRegion)
{
    fab::SaRegionSpec spec =
        fab::SaRegionSpec::fromChip(models::chip("B5"), 4);
    fab::SaRegionTruth truth;
    const auto cell = fab::buildSaRegion(spec, truth);
    fab::VoxelizeParams vparams;
    vparams.voxelNm = 4.0;
    auto baseline = fab::voxelize(*cell, truth.region, vparams);
    auto vol = baseline;

    fab::DefectParams dp;
    dp.seed = 3;
    dp.bitlineShorts = 1;
    dp.bitlineOpens = 1;
    dp.missingVias = 1;
    dp.particles = 1;
    const auto planted =
        fab::plantDefects(vol, truth, vparams.voxelNm, dp);
    ASSERT_TRUE(planted.ok()) << planted.error().message;
    ASSERT_EQ(planted.value().size(), 4u);

    const common::Rect wiggle = truth.region.inflate(1.0);
    size_t kinds_seen = 0;
    for (const auto &d : planted.value()) {
        kinds_seen |= 1u << static_cast<unsigned>(d.kind);
        EXPECT_FALSE(d.footprint.empty());
        EXPECT_GE(d.footprint.x0, wiggle.x0);
        EXPECT_LE(d.footprint.x1, wiggle.x1);
        if (d.kind == fab::DefectKind::BitlineShort) {
            ASSERT_GE(d.bitlineA, 0);
            ASSERT_GE(d.bitlineB, 0);
            EXPECT_EQ(d.bitlineB, d.bitlineA + 1);
        }
    }
    EXPECT_EQ(kinds_seen, 0b1111u); // every kind planted once

    // The stamp actually changed the silicon.
    EXPECT_FALSE(sameVoxels(vol, baseline));

    // Same seed, same silicon: the stamping is deterministic.
    auto again = baseline;
    const auto replay =
        fab::plantDefects(again, truth, vparams.voxelNm, dp);
    ASSERT_TRUE(replay.ok());
    EXPECT_TRUE(sameVoxels(vol, again));
}

TEST(Defects, ParamValidationAndTypedErrors)
{
    fab::DefectParams dp;
    dp.particleDiameterNm = 0.0;
    EXPECT_TRUE(fab::validate(dp).has_value());

    fab::DefectParams many;
    many.bitlineOpens = 65;
    EXPECT_TRUE(fab::validate(many).has_value());

    // Empty volume is a typed error, not a crash.
    image::Volume3D empty;
    fab::SaRegionTruth truth;
    fab::DefectParams one;
    one.particles = 1;
    const auto r = fab::plantDefects(empty, truth, 5.0, one);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, common::ErrorCode::InvalidArgument);

    // A region with a single bitline cannot host a short.
    fab::SaRegionSpec spec;
    spec.pairs = 2;
    fab::SaRegionTruth small;
    const auto cell = fab::buildSaRegion(spec, small);
    fab::VoxelizeParams vparams;
    auto vol = fab::voxelize(*cell, small.region, vparams);
    fab::SaRegionTruth no_bl = small;
    no_bl.bitlines.clear();
    fab::DefectParams shorts;
    shorts.bitlineShorts = 1;
    const auto impossible =
        fab::plantDefects(vol, no_bl, vparams.voxelNm, shorts);
    ASSERT_FALSE(impossible.ok());
    EXPECT_EQ(impossible.error().code,
              common::ErrorCode::FailedPrecondition);
}

// ---- scope ------------------------------------------------------------

TEST(Sem, ContrastDistinguishesMaterialsPerDetector)
{
    using fab::Material;
    // SE orders by conductivity: copper above poly above oxide.
    EXPECT_GT(scope::materialContrast(Material::Copper, Detector::Se),
              scope::materialContrast(Material::Polysilicon,
                                      Detector::Se));
    // BSE orders by atomic number: tungsten brightest.
    EXPECT_GT(scope::materialContrast(Material::Tungsten,
                                      Detector::Bse),
              scope::materialContrast(Material::Copper,
                                      Detector::Bse));
    // Round trip through classification.
    for (size_t m = 0; m < fab::kNumMaterials; ++m) {
        const auto mat = static_cast<Material>(m);
        for (auto det : {Detector::Se, Detector::Bse}) {
            EXPECT_EQ(scope::classifyIntensity(
                          scope::materialContrast(mat, det), det),
                      mat);
        }
    }
}

TEST(Sem, SliceAveragingEnablesSubSliceEdges)
{
    // A material edge inside the slice produces an intermediate
    // intensity, which the measurement stage interpolates.
    image::Volume3D vol(8, 4, 4,
                        static_cast<float>(fab::Material::Oxide));
    for (size_t x = 3; x < 8; ++x)
        for (size_t y = 0; y < 4; ++y)
            for (size_t z = 0; z < 4; ++z)
                vol.at(x, y, z) =
                    static_cast<float>(fab::Material::Copper);

    scope::SemParams sem;
    sem.detector = Detector::Se;
    // Slice covering x in [2, 6): 1 of 4 voxels oxide.
    const auto img = scope::semImageClean(vol, 2, 4, sem);
    const double cu =
        scope::materialContrast(fab::Material::Copper, Detector::Se);
    const double ox =
        scope::materialContrast(fab::Material::Oxide, Detector::Se);
    EXPECT_NEAR(img.at(1, 1), 0.25 * ox + 0.75 * cu, 1e-6);
}

TEST(Sem, SeQualityCompressesContrast)
{
    // Section IV-B: vendor B/C materials give poor SE contrast.
    image::Volume3D vol(4, 2, 2,
                        static_cast<float>(fab::Material::Copper));
    scope::SemParams good;
    good.detector = Detector::Se;
    good.seQuality = 1.0;
    scope::SemParams poor = good;
    poor.seQuality = 0.45;

    const auto img_good = scope::semImageClean(vol, 0, 2, good);
    const auto img_poor = scope::semImageClean(vol, 0, 2, poor);
    const double pivot = 0.45;
    EXPECT_LT(std::abs(img_poor.at(0, 0) - pivot),
              std::abs(img_good.at(0, 0) - pivot));

    // BSE is unaffected by the sample's SE quality.
    scope::SemParams bse = poor;
    bse.detector = Detector::Bse;
    const auto img_bse = scope::semImageClean(vol, 0, 2, bse);
    EXPECT_FLOAT_EQ(img_bse.at(0, 0),
                    static_cast<float>(scope::materialContrast(
                        fab::Material::Copper, Detector::Bse)));
}

TEST(Sem, VendorSeQualityInDatasets)
{
    // Vendor A imaged with SE (quality 1); B and C needed BSE.
    EXPECT_DOUBLE_EQ(models::chip("A4").seQuality, 1.0);
    EXPECT_DOUBLE_EQ(models::chip("A5").seQuality, 1.0);
    for (const char *id : {"B4", "C4", "B5", "C5"})
        EXPECT_LT(models::chip(id).seQuality, 0.6) << id;
}

TEST(Fib, AcquisitionRecordsBoundedDrift)
{
    image::Volume3D vol(64, 16, 16, 0.0f);
    scope::FibSemParams params;
    params.sliceVoxels = 2;
    params.driftProbability = 0.9; // drift a lot
    params.maxDriftPx = 3;
    common::Rng rng(5);
    const auto stack = scope::acquire(vol, params, rng);
    EXPECT_EQ(stack.slices.size(), 32u);
    ASSERT_EQ(stack.trueDrift.size(), 32u);
    for (const auto &d : stack.trueDrift) {
        EXPECT_LE(std::abs(d.first), 3);
        EXPECT_LE(std::abs(d.second), 3);
    }
    EXPECT_EQ(stack.trueDrift.front(), (std::pair<long, long>{0, 0}));
}

TEST(Fib, CampaignCostMatchesPaperScale)
{
    // Section IV-B: the 100 um^2 scans (A4, A5) took more than 24 h;
    // the reduced 30 um^2 scans stay well below that.
    for (const auto &chip : models::allChips()) {
        const auto cost = scope::campaignCost(chip);
        if (chip.roiAreaUm2 >= 100.0) {
            EXPECT_GT(cost.totalHours, 24.0) << chip.id;
        } else {
            EXPECT_LT(cost.totalHours, 24.0) << chip.id;
        }
        EXPECT_GT(cost.slices, 100u);
    }
}

TEST(Fib, FinerSlicesCostMore)
{
    models::ChipSpec coarse = models::chip("C4"); // 20 nm slices
    models::ChipSpec fine = coarse;
    fine.sliceNm = 10.0;
    EXPECT_GT(scope::campaignCost(fine).totalHours,
              scope::campaignCost(coarse).totalHours);
}

TEST(Postprocess, EmptyStackIsWellDefinedNoOp)
{
    image::SliceStack stack;
    const auto result = scope::postprocess(stack);
    EXPECT_TRUE(result.volume.empty());
    EXPECT_TRUE(result.shifts.empty());
    EXPECT_EQ(result.alignmentResidualPx, 0.0);
}

TEST(Postprocess, SingleSliceStackIsIdentity)
{
    // One slice has no neighbour to register against: the chain must
    // return the identity shift and a zero residual, not fall through
    // the MI alignment path.
    image::Volume3D vol(4, 12, 10, 0.3f);
    scope::FibSemParams params;
    params.sliceVoxels = 4;
    common::Rng rng(3);
    const auto stack = scope::acquire(vol, params, rng);
    ASSERT_EQ(stack.slices.size(), 1u);

    const auto result = scope::postprocess(stack);
    ASSERT_EQ(result.shifts.size(), 1u);
    EXPECT_EQ(result.shifts[0], (std::pair<long, long>{0, 0}));
    EXPECT_EQ(result.alignmentResidualPx, 0.0);
    EXPECT_EQ(result.volume.nx(), 1u);
    EXPECT_EQ(result.volume.ny(), 12u);
    EXPECT_EQ(result.volume.nz(), 10u);
}

TEST(Postprocess, MeetsAlignmentBudgetOnSyntheticStack)
{
    // Build a drifting noisy stack over a structured volume and check
    // the chain recovers the drift within the paper's 0.77% budget.
    image::Volume3D vol(96, 40, 40, 0.1f);
    for (size_t x = 0; x < 96; ++x)
        for (size_t y = 4; y < 36; y += 8)
            for (size_t z = 10; z < 20; ++z)
                for (size_t yy = y; yy < y + 4; ++yy)
                    vol.at(x, yy, z) = 0.8f;

    scope::FibSemParams params;
    params.sliceVoxels = 2;
    params.driftProbability = 0.5;
    common::Rng rng(6);
    const auto stack = scope::acquire(vol, params, rng);

    const auto result = scope::postprocess(stack);
    EXPECT_LT(result.alignmentResidualPx, 0.5);
    EXPECT_TRUE(result.meetsAlignmentBudget(512));
    EXPECT_EQ(result.volume.nx(), stack.slices.size());
}

// ---- ROI search (Fig. 6) ----------------------------------------------

TEST(RoiSearch, RegionClassification)
{
    const auto &chip = models::chip("C5");
    EXPECT_EQ(scope::regionAlongBitlines(chip, 0.0),
              scope::RegionKind::Mat);
    EXPECT_EQ(scope::regionAlongBitlines(chip,
                                         chip.matHeightNm + 10.0),
              scope::RegionKind::SaLogic);
    EXPECT_EQ(scope::regionAlongWordlines(chip,
                                          chip.matWidthNm + 10.0),
              scope::RegionKind::RowDriverLogic);
    // Periodicity.
    const double period = chip.matHeightNm + chip.saHeightNm;
    EXPECT_EQ(scope::regionAlongBitlines(chip, 3 * period + 10.0),
              scope::RegionKind::Mat);
}

class RoiSearchPerChip : public ::testing::TestWithParam<const char *>
{
};

TEST_P(RoiSearchPerChip, FindsSaAsTheWiderLogicStrip)
{
    const auto &chip = models::chip(GetParam());
    const auto result = scope::roiSearch(chip);

    // The SA strip is wider than the row drivers on every chip.
    EXPECT_TRUE(result.saIsSecondDirection);
    EXPECT_NEAR(result.w1Nm, chip.rowDriverWidthNm, 120.0);
    EXPECT_NEAR(result.w2Nm, chip.saHeightNm, 120.0);
    // Paper: identification takes no more than 2 hours per chip.
    EXPECT_LE(result.hoursSpent, 2.0);
    EXPECT_GT(result.crossSections, 10u);
}

INSTANTIATE_TEST_SUITE_P(AllChips, RoiSearchPerChip,
                         ::testing::Values("A4", "B4", "C4", "A5",
                                           "B5", "C5"));

TEST(Prep, PlanCoversDecapAndIdentification)
{
    // MAT-visible chips (A4, C4, C5) identify the ROI optically;
    // the rest need the Fig. 6 blind search.  Either way, the paper's
    // <= 2 h identification budget holds.
    for (const auto &chip : models::allChips()) {
        const auto plan = scope::prepareChip(chip);
        EXPECT_EQ(plan.matsVisible, chip.matsVisible) << chip.id;
        EXPECT_GE(plan.steps.size(), 4u);
        EXPECT_GT(plan.prepMinutes(), 30.0);
        EXPECT_LE(plan.identificationHours(), 2.0) << chip.id;
        if (!chip.matsVisible) {
            EXPECT_TRUE(plan.blindSearch.saIsSecondDirection)
                << chip.id;
        } else {
            EXPECT_EQ(plan.blindSearch.crossSections, 0u);
            EXPECT_LT(plan.identificationHours(), 1.0);
        }
    }
}

// ---- Imaging fast paths (contrast LUT, clean-frame cache) ----------

TEST(Sem, ContrastLutMatchesSwitchExactly)
{
    for (const auto det : {Detector::Se, Detector::Bse}) {
        const scope::ContrastLut lut = scope::contrastLut(det);
        for (size_t m = 0; m < fab::kNumMaterials; ++m) {
            EXPECT_EQ(lut[m],
                      scope::materialContrast(
                          static_cast<fab::Material>(m), det))
                << "material " << m;
        }
    }
}

TEST(Sem, ClassifyIntensityLutOverloadMatches)
{
    for (const auto det : {Detector::Se, Detector::Bse}) {
        const scope::ContrastLut lut = scope::contrastLut(det);
        for (const bool exclude : {false, true}) {
            for (int i = -5; i <= 105; ++i) {
                const double intensity = i / 100.0;
                EXPECT_EQ(scope::classifyIntensity(intensity, det,
                                                   exclude),
                          scope::classifyIntensity(intensity, lut,
                                                   exclude))
                    << "intensity " << intensity;
            }
        }
    }
}

namespace
{

/// Structured fault-exercising scene (mirrors test_robustness.cc).
image::Volume3D
cacheTestScene()
{
    const size_t nx = 60, ny = 32, nz = 40;
    image::Volume3D vol(nx, ny, nz, 1.0f);
    for (size_t x = 0; x < nx; ++x) {
        for (size_t y = 0; y < ny; ++y) {
            for (size_t z = 0; z < nz; ++z) {
                float v = 1.0f;
                if (z >= 12 && z < 16)
                    v = 0.0f;
                else if (z >= 22 && z < 26)
                    v = 2.0f;
                else if (z >= 16 && z < 22 && (y + x / 2) % 10 < 2)
                    v = 3.0f;
                vol.at(x, y, z) = v;
            }
        }
    }
    return vol;
}

} // namespace

TEST(Fib, CleanFrameCacheIsBitwiseEquivalent)
{
    // The cache only skips re-rendering a deterministic frame, so a
    // fault-injected campaign must come out identical with it on or
    // off — frames, drift records, retry counts, audit, everything.
    const auto vol = cacheTestScene();
    scope::FibSemParams params;
    params.sliceVoxels = 2;
    params.driftProbability = 0.3;
    scope::FaultParams faults;
    faults = faults.scaled(2.0); // enough faults to force re-imaging
    faults.enabled = true;

    scope::RecoveryParams with_cache;
    ASSERT_TRUE(with_cache.reuseCleanFrames); // the default
    scope::RecoveryParams no_cache;
    no_cache.reuseCleanFrames = false;

    const auto a =
        scope::acquireRobust(vol, params, faults, with_cache, 42);
    const auto b =
        scope::acquireRobust(vol, params, faults, no_cache, 42);

    EXPECT_GT(a.retries, 0u) << "campaign never re-imaged; the cache "
                                "was not exercised";
    EXPECT_EQ(a.retries, b.retries);
    EXPECT_EQ(a.slicesRetried, b.slicesRetried);
    EXPECT_EQ(a.slicesInterpolated, b.slicesInterpolated);
    EXPECT_EQ(a.interpolatedSlices, b.interpolatedSlices);
    EXPECT_EQ(a.qcConfidence, b.qcConfidence);
    ASSERT_EQ(a.stack.slices.size(), b.stack.slices.size());
    EXPECT_EQ(a.stack.trueDrift, b.stack.trueDrift);
    for (size_t s = 0; s < a.stack.slices.size(); ++s) {
        const auto &fa = a.stack.slices[s];
        const auto &fb = b.stack.slices[s];
        ASSERT_EQ(fa.size(), fb.size());
        EXPECT_EQ(std::memcmp(fa.data().data(), fb.data().data(),
                              fa.size() * sizeof(float)),
                  0)
            << "slice " << s;
    }
}

TEST(Fib, CleanFrameCacheReturnsTheExactCleanFrame)
{
    // A cache hit must hand back the very frame semImageClean would
    // render: image a no-fault campaign (faults disabled => every
    // attempt is the clean render + deterministic noise) and compare
    // slice 0's accepted frame against an independent clean + noise
    // reconstruction.
    const auto vol = cacheTestScene();
    scope::FibSemParams params;
    params.sliceVoxels = 2;
    params.driftProbability = 0.0;
    const scope::FaultParams faults; // disabled
    const scope::RecoveryParams recovery;

    const auto robust =
        scope::acquireRobust(vol, params, faults, recovery, 7);
    image::Image2D expected =
        scope::semImageClean(vol, 0, params.sliceVoxels, params.sem);
    const double electrons =
        params.sem.electronsPerUs * params.sem.dwellUs;
    const uint64_t frame_seed = common::Rng(7, 1).next();
    image::addSensorNoise(expected, electrons, params.sem.readNoise,
                          frame_seed);

    ASSERT_FALSE(robust.stack.slices.empty());
    const auto &got = robust.stack.slices.front();
    ASSERT_EQ(got.size(), expected.size());
    EXPECT_EQ(std::memcmp(got.data().data(),
                          expected.data().data(),
                          got.size() * sizeof(float)),
              0);
}

TEST(Fib, CleanFrameCacheCountersAppearInTelemetry)
{
    const auto vol = cacheTestScene();
    scope::FibSemParams params;
    params.sliceVoxels = 2;
    params.driftProbability = 0.3;
    scope::FaultParams faults;
    faults = faults.scaled(2.0);
    faults.enabled = true;
    const scope::RecoveryParams recovery;

    telemetry::Session session;
    const auto robust =
        scope::acquireRobust(vol, params, faults, recovery, 42);
    const auto collected = session.finish({});

    const auto &counters = collected->metrics.counters;
    ASSERT_TRUE(counters.count("sem.clean_cache.miss"));
    ASSERT_TRUE(counters.count("sem.clean_cache.hit"));
    // Every retry re-images an unchanged mill position, so each one
    // must be a cache hit (skip-overshoot collisions can add more).
    EXPECT_GT(robust.retries, 0u);
    EXPECT_GE(counters.at("sem.clean_cache.hit"), robust.retries);
    // Misses cannot exceed one clean render per slice.
    EXPECT_LE(counters.at("sem.clean_cache.miss"),
              robust.stack.slices.size());
}

TEST(Sem, SimdShadingMatchesPortableScalarBitwise)
{
    // Odd dims plus fractional and out-of-range voxel codes: the
    // gathered LUT path must decode (round, clamp-to-Oxide) exactly
    // like the scalar voxelMaterial() loop, bit for bit.
    image::Volume3D vol(19, 13, 7);
    common::Rng rng(3, 1);
    for (size_t z = 0; z < 7; ++z)
        for (size_t y = 0; y < 13; ++y)
            for (size_t x = 0; x < 19; ++x) {
                const double u = rng.uniform();
                vol.at(x, y, z) = static_cast<float>(
                    u < 0.1 ? -2.0 + u : u * 8.0 - 0.49);
            }
    scope::SemParams sp;
    for (auto det : {Detector::Se, Detector::Bse}) {
        sp.detector = det;
        const image::Image2D fast =
            scope::semImageClean(vol, 2, 15, sp);
        common::simd::ScopedForceScalar off;
        const image::Image2D portable =
            scope::semImageClean(vol, 2, 15, sp);
        ASSERT_EQ(fast.width(), portable.width());
        ASSERT_EQ(fast.height(), portable.height());
        EXPECT_EQ(std::memcmp(fast.data().data(),
                              portable.data().data(),
                              fast.size() * sizeof(float)),
                  0)
            << "detector " << (det == Detector::Se ? "SE" : "BSE");
    }
}

} // namespace
