/**
 * @file
 * Tests for the image substrate: containers, noise, TV denoising, and
 * mutual-information registration.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>

#include "common/rng.hh"
#include "common/simd.hh"
#include "common/telemetry.hh"
#include "image/denoise.hh"
#include "image/image2d.hh"
#include "image/noise.hh"
#include "image/pgm.hh"
#include "image/qc.hh"
#include "image/registration.hh"
#include "image/volume3d.hh"

namespace
{

using namespace hifi;
using common::Rng;
using image::Image2D;
using image::Volume3D;

/// A synthetic structured test image: bars and a block.
Image2D
testPattern(size_t w = 48, size_t h = 40)
{
    Image2D img(w, h, 0.1f);
    for (size_t x = 6; x < w; x += 8)
        img.fillRect(static_cast<long>(x), 0, static_cast<long>(x + 4),
                     static_cast<long>(h), 0.8f);
    img.fillRect(10, 12, 30, 26, 0.5f);
    return img;
}

TEST(Image2D, BasicAccessors)
{
    Image2D img(8, 4, 0.25f);
    EXPECT_EQ(img.width(), 8u);
    EXPECT_EQ(img.height(), 4u);
    EXPECT_EQ(img.size(), 32u);
    img.at(3, 2) = 1.0f;
    EXPECT_FLOAT_EQ(img.at(3, 2), 1.0f);
    EXPECT_FLOAT_EQ(img.minValue(), 0.25f);
    EXPECT_FLOAT_EQ(img.maxValue(), 1.0f);
    EXPECT_THROW(Image2D(0, 4), std::invalid_argument);
}

TEST(Image2D, ClampedAtEdges)
{
    Image2D img(4, 4, 0.0f);
    img.at(0, 0) = 1.0f;
    img.at(3, 3) = 2.0f;
    EXPECT_FLOAT_EQ(img.clampedAt(-5, -5), 1.0f);
    EXPECT_FLOAT_EQ(img.clampedAt(10, 10), 2.0f);
}

TEST(Image2D, FillRectClips)
{
    Image2D img(10, 10, 0.0f);
    img.fillRect(-5, -5, 3, 3, 1.0f);
    EXPECT_FLOAT_EQ(img.at(0, 0), 1.0f);
    EXPECT_FLOAT_EQ(img.at(2, 2), 1.0f);
    EXPECT_FLOAT_EQ(img.at(3, 3), 0.0f);
}

TEST(Image2D, MseAndPsnr)
{
    Image2D a(4, 4, 0.0f), b(4, 4, 0.5f);
    EXPECT_DOUBLE_EQ(a.mse(b), 0.25);
    EXPECT_NEAR(a.psnr(b), 10.0 * std::log10(4.0), 1e-9);
    EXPECT_GT(a.psnr(a), 1e8);
    Image2D c(5, 4);
    EXPECT_THROW(a.mse(c), std::invalid_argument);
}

TEST(Image2D, ShiftMovesContent)
{
    Image2D img(8, 8, 0.0f);
    img.at(2, 3) = 1.0f;
    Image2D s = img.shifted(3, 2);
    EXPECT_FLOAT_EQ(s.at(5, 5), 1.0f);
    EXPECT_FLOAT_EQ(s.at(2, 3), 0.0f);
}

TEST(Image2D, CropExtractsWindow)
{
    Image2D img = testPattern();
    Image2D c = img.crop(10, 12, 30, 26);
    EXPECT_EQ(c.width(), 20u);
    EXPECT_EQ(c.height(), 14u);
    EXPECT_FLOAT_EQ(c.at(0, 0), img.at(10, 12));
    EXPECT_THROW(img.crop(10, 10, 5, 20), std::invalid_argument);
}

TEST(Image2D, TotalVariationOfFlatIsZero)
{
    Image2D flat(16, 16, 0.7f);
    EXPECT_DOUBLE_EQ(flat.totalVariation(), 0.0);
    Image2D step(2, 1, 0.0f);
    step.at(1, 0) = 1.0f;
    EXPECT_DOUBLE_EQ(step.totalVariation(), 1.0);
}

TEST(Volume3D, SliceRoundTrip)
{
    Volume3D vol(5, 4, 3, 0.0f);
    Image2D xs(4, 3, 0.0f);
    xs.at(1, 2) = 0.9f;
    vol.setCrossSection(2, xs);
    EXPECT_FLOAT_EQ(vol.at(2, 1, 2), 0.9f);
    Image2D back = vol.crossSection(2);
    EXPECT_FLOAT_EQ(back.at(1, 2), 0.9f);
    EXPECT_THROW(vol.crossSection(9), std::out_of_range);
}

TEST(Volume3D, PlanarViewAndSlab)
{
    Volume3D vol(4, 4, 4, 0.0f);
    vol.at(1, 2, 0) = 0.4f;
    vol.at(1, 2, 1) = 0.8f;
    EXPECT_FLOAT_EQ(vol.planarView(1).at(1, 2), 0.8f);
    EXPECT_NEAR(vol.planarSlab(0, 2).at(1, 2), 0.6f, 1e-6);
    EXPECT_THROW(vol.planarSlab(3, 3), std::invalid_argument);
}

TEST(Noise, ShotNoiseIsUnbiased)
{
    Rng rng(3);
    Image2D img(64, 64, 0.5f);
    image::addShotNoise(img, 2000.0, rng);
    EXPECT_NEAR(img.meanValue(), 0.5f, 0.005);
    EXPECT_GT(img.maxValue(), 0.5f); // noise actually applied
    EXPECT_THROW(image::addShotNoise(img, 0.0, rng),
                 std::invalid_argument);
}

TEST(Noise, MoreDwellMeansHigherSnr)
{
    // The paper doubles dwell (3 us -> 6 us) for hard samples; SNR
    // should rise accordingly.
    Rng rng(4);
    const Image2D clean = testPattern();

    Image2D low = clean;
    image::addShotNoise(low, 900.0, rng);
    Image2D high = clean;
    image::addShotNoise(high, 1800.0, rng);
    EXPECT_GT(image::snr(high, clean), image::snr(low, clean));
}

TEST(Noise, GaussianSigmaScales)
{
    Rng rng(5);
    Image2D a = testPattern();
    image::addGaussianNoise(a, 0.02, rng);
    Image2D b = testPattern();
    image::addGaussianNoise(b, 0.2, rng);
    const Image2D clean = testPattern();
    EXPECT_LT(a.mse(clean), b.mse(clean));
}

class DenoiserTest : public ::testing::TestWithParam<int>
{
  protected:
    Image2D
    denoise(const Image2D &img, const image::TvParams &tv) const
    {
        return GetParam() == 0 ? image::denoiseChambolle(img, tv)
                               : image::denoiseSplitBregman(img, tv);
    }
};

TEST_P(DenoiserTest, ReducesNoiseMse)
{
    Rng rng(6);
    const Image2D clean = testPattern();
    Image2D noisy = clean;
    image::addShotNoise(noisy, 900.0, rng);
    image::addGaussianNoise(noisy, 0.05, rng);

    const Image2D out = denoise(noisy, {0.05, 40});
    EXPECT_LT(out.mse(clean), 0.5 * noisy.mse(clean));
}

TEST_P(DenoiserTest, ReducesTotalVariation)
{
    Rng rng(7);
    Image2D noisy = testPattern();
    image::addGaussianNoise(noisy, 0.08, rng);
    const Image2D out = denoise(noisy, {0.05, 40});
    EXPECT_LT(out.totalVariation(), noisy.totalVariation());
}

TEST_P(DenoiserTest, PreservesEdges)
{
    // After denoising, a strong edge must remain steep: the contrast
    // across the bar boundary stays above 60% of the original.
    Rng rng(8);
    const Image2D clean = testPattern();
    Image2D noisy = clean;
    image::addGaussianNoise(noisy, 0.05, rng);
    const Image2D out = denoise(noisy, {0.05, 40});

    const double edge = out.at(8, 20) - out.at(4, 20);
    EXPECT_GT(edge, 0.6 * (clean.at(8, 20) - clean.at(4, 20)));
}

TEST_P(DenoiserTest, RejectsEmptyImage)
{
    Image2D empty;
    EXPECT_THROW(denoise(empty, {0.05, 10}), std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(BothAlgos, DenoiserTest,
                         ::testing::Values(0, 1),
                         [](const auto &info) {
                             return info.param == 0 ? "Chambolle"
                                                    : "SplitBregman";
                         });

TEST(Registration, MutualInformationSelfIsMax)
{
    const Image2D img = testPattern();
    const double self = image::mutualInformation(img, img);
    const double shifted =
        image::mutualInformation(img, img.shifted(3, 0));
    EXPECT_GT(self, shifted);
    EXPECT_THROW(image::mutualInformation(img, Image2D(3, 3)),
                 std::invalid_argument);
}

TEST(Registration, RecoversKnownShift)
{
    Rng rng(9);
    Image2D fixed = testPattern(60, 50);
    image::addGaussianNoise(fixed, 0.03, rng);
    // moving = fixed displaced by (+3, -2): registration must report
    // the corrective (-3, +2).
    Image2D moving = fixed.shifted(3, -2);

    const auto shift = image::registerShiftMi(fixed, moving);
    EXPECT_EQ(shift.first, -3);
    EXPECT_EQ(shift.second, 2);
}

TEST(Registration, SubpixelRefinementStaysNearIntegerTruth)
{
    Rng rng(12);
    Image2D fixed = testPattern(60, 50);
    image::addGaussianNoise(fixed, 0.02, rng);
    Image2D moving = fixed.shifted(2, -3);
    const auto sub = image::registerShiftMiSubpixel(fixed, moving);
    EXPECT_NEAR(sub.first, -2.0, 0.5);
    EXPECT_NEAR(sub.second, 3.0, 0.5);
}

TEST(Registration, AlignStackRecoversDriftWalk)
{
    Rng rng(10);
    Image2D base = testPattern(60, 50);
    image::addGaussianNoise(base, 0.02, rng);

    const std::vector<std::pair<long, long>> drift = {
        {0, 0}, {1, 0}, {2, 1}, {2, 2}, {1, 2}, {0, 1}};
    std::vector<Image2D> slices;
    for (const auto &d : drift)
        slices.push_back(base.shifted(d.first, d.second));

    const auto recovered = image::alignStack(slices);
    EXPECT_NEAR(image::alignmentResidual(recovered, drift), 0.0, 0.5);
}

TEST(Registration, ResidualDetectsMisalignment)
{
    const std::vector<std::pair<long, long>> truth = {
        {0, 0}, {1, 1}, {2, 2}};
    const std::vector<std::pair<long, long>> bad = {
        {0, 0}, {-1, -1}, {-2, -2}};
    EXPECT_GT(image::alignmentResidual(bad, truth), 2.0);
    EXPECT_DOUBLE_EQ(image::alignmentResidual(truth, truth), 0.0);
}

TEST(Pgm, RoundTripPreservesStructure)
{
    const Image2D img = testPattern(24, 16);
    const std::string path = "/tmp/hifi_test.pgm";
    image::writePgm(path, img, 0.0f, 1.0f);
    const Image2D back = image::readPgm(path);
    ASSERT_EQ(back.width(), img.width());
    ASSERT_EQ(back.height(), img.height());
    EXPECT_LT(back.mse(img), 1e-4); // 8-bit quantization only
}

TEST(Pgm, AutoRangeNormalizes)
{
    Image2D img(4, 4, 5.0f);
    img.at(0, 0) = 7.0f;
    image::writePgm("/tmp/hifi_test2.pgm", img);
    const Image2D back = image::readPgm("/tmp/hifi_test2.pgm");
    EXPECT_NEAR(back.at(0, 0), 1.0f, 0.01);
    EXPECT_NEAR(back.at(1, 1), 0.0f, 0.01);
}

TEST(Pgm, Errors)
{
    Image2D img(4, 4, 0.5f);
    EXPECT_THROW(image::writePgm("/nonexistent/x.pgm", img),
                 std::runtime_error);
    EXPECT_THROW(image::readPgm("/nonexistent/x.pgm"),
                 std::runtime_error);
    EXPECT_THROW(image::writePgm("/tmp/x.pgm", Image2D()),
                 std::invalid_argument);
}

TEST(Registration, AssembleVolumeAppliesCorrections)
{
    Image2D a(6, 6, 0.0f);
    a.at(3, 3) = 1.0f;
    // Slice 1 drifted by (+1, +1); assembly with the recorded drift
    // must put the bright pixel back at (3, 3).
    std::vector<Image2D> slices = {a, a.shifted(1, 1)};
    const auto vol =
        image::assembleVolume(slices, {{0, 0}, {1, 1}});
    EXPECT_FLOAT_EQ(vol.at(0, 3, 3), 1.0f);
    EXPECT_FLOAT_EQ(vol.at(1, 3, 3), 1.0f);
}

// ---- Fast-path equivalence (quantized MI, tie-break, tolerance) ----

/// Bit-level double comparison: the fast paths promise *bitwise*
/// identity, which EXPECT_DOUBLE_EQ (ULP-based) would not catch.
void
expectSameBits(double a, double b, const std::string &what)
{
    EXPECT_EQ(std::bit_cast<uint64_t>(a), std::bit_cast<uint64_t>(b))
        << what << ": " << a << " vs " << b;
}

/// Noisy structured image of the given shape (degenerate shapes ok).
Image2D
noisyImage(size_t w, size_t h, uint64_t seed)
{
    Rng rng(seed);
    Image2D img(w, h);
    for (float &v : img.data())
        v = static_cast<float>(rng.uniform());
    return img;
}

TEST(Registration, QuantizedMiIsBitwiseIdenticalToReference)
{
    // Every size class the QC / alignment paths can produce,
    // including the 1xN / Nx1 degenerate overlaps.
    const std::pair<size_t, size_t> sizes[] = {
        {1, 1}, {1, 7}, {7, 1}, {2, 2}, {5, 5}, {17, 13}, {48, 40}};
    for (const auto &[w, h] : sizes) {
        const Image2D a = noisyImage(w, h, 100 + w * 31 + h);
        const Image2D b = noisyImage(w, h, 200 + w * 31 + h);
        const long max_dx = static_cast<long>(w) + 1;
        const long max_dy = static_cast<long>(h) + 1;
        for (long dy = -max_dy; dy <= max_dy; ++dy) {
            for (long dx = -max_dx; dx <= max_dx; ++dx) {
                for (const size_t bins : {2u, 16u, 32u}) {
                    const double fast = image::mutualInformationAtShift(
                        a, b, dx, dy, bins);
                    const double ref =
                        image::mutualInformationAtShiftReference(
                            a, b, dx, dy, bins);
                    expectSameBits(
                        fast, ref,
                        std::to_string(w) + "x" + std::to_string(h) +
                            " shift (" + std::to_string(dx) + "," +
                            std::to_string(dy) + ") bins " +
                            std::to_string(bins));
                }
            }
        }
    }
}

TEST(Registration, FastSearchMatchesReferenceSearch)
{
    Rng rng(31);
    Image2D fixed = testPattern(60, 50);
    image::addGaussianNoise(fixed, 0.05, rng);
    Image2D moving = fixed.shifted(4, -3);
    image::addGaussianNoise(moving, 0.05, rng);

    for (const long span : {2l, 6l, 9l}) {
        image::MiParams mi;
        mi.maxShift = span;
        const auto fast = image::registerShiftMi(fixed, moving, mi);
        const auto ref =
            image::registerShiftMiReference(fixed, moving, mi);
        EXPECT_EQ(fast, ref) << "maxShift " << span;
    }
}

TEST(Registration, QuantizePlaneMatchesReferenceBinning)
{
    const Image2D img = noisyImage(13, 9, 5);
    const auto q = image::quantizePlane(img, 32);
    ASSERT_EQ(q.idx.size(), img.size());
    // Self-MI through the plane must equal the reference self-MI:
    // only possible if every pixel landed in the reference's bin.
    expectSameBits(
        image::mutualInformationAtShift(img, img, 0, 0, 32),
        image::mutualInformationAtShiftReference(img, img, 0, 0, 32),
        "self MI through quantized plane");
    EXPECT_THROW(image::quantizePlane(img, 1), std::invalid_argument);
    EXPECT_THROW(image::quantizePlane(img, 70000),
                 std::invalid_argument);
}

TEST(Registration, ConstantImagesTieBreakToZeroShift)
{
    // Every candidate scores identically on featureless frames (the
    // dropout-fault case); the documented tie-break must pick (0, 0),
    // not the most-negative corner of the search window.
    const Image2D flat_a(20, 16, 0.5f);
    const Image2D flat_b(20, 16, 0.5f);
    const auto shift = image::registerShiftMi(flat_a, flat_b);
    EXPECT_EQ(shift, (std::pair<long, long>{0, 0}));
    const auto ref =
        image::registerShiftMiReference(flat_a, flat_b);
    EXPECT_EQ(ref, (std::pair<long, long>{0, 0}));
}

TEST(Registration, PyramidAgreesWithExhaustiveOnStructuredImages)
{
    Rng rng(17);
    Image2D fixed = testPattern(128, 96);
    image::addGaussianNoise(fixed, 0.03, rng);
    const Image2D moving = fixed.shifted(5, -4);

    image::MiParams exhaustive;
    exhaustive.maxShift = 16;
    image::MiParams pyramid = exhaustive;
    pyramid.strategy = image::MiStrategy::Pyramid;

    EXPECT_EQ(image::registerShiftMi(fixed, moving, pyramid),
              image::registerShiftMi(fixed, moving, exhaustive));
}

TEST(Registration, TelemetryCountsCandidateEvaluations)
{
    const Image2D fixed = testPattern(64, 48);
    const Image2D moving = fixed.shifted(2, -1);

    telemetry::Session session;
    image::MiParams mi;
    mi.maxShift = 4;
    (void)image::registerShiftMi(fixed, moving, mi);
    mi.maxShift = 16;
    mi.strategy = image::MiStrategy::Pyramid;
    (void)image::registerShiftMi(fixed, moving, mi);
    const auto collected = session.finish({});

    const auto &counters = collected->metrics.counters;
    ASSERT_TRUE(counters.count("mi.exhaustive.evals"));
    // Exhaustive at maxShift 4 scores the full (2*4+1)^2 window.
    EXPECT_EQ(counters.at("mi.exhaustive.evals"), 81u);
    ASSERT_TRUE(counters.count("mi.pyramid.evals"));
    ASSERT_TRUE(counters.count("mi.pyramid.levels"));
    // The pyramid's point: far fewer candidates than the 1089 the
    // exhaustive scan would score at maxShift 16.
    EXPECT_LT(counters.at("mi.pyramid.evals"), 1089u / 3);
    EXPECT_GE(counters.at("mi.pyramid.levels"), 2u);
}

TEST(Denoise, TinyToleranceIsBitwiseIdenticalToFixedIterations)
{
    Rng rng(41);
    Image2D noisy = testPattern();
    image::addGaussianNoise(noisy, 0.08, rng);

    image::TvParams fixed_iters{0.05, 30};
    image::TvParams tracked = fixed_iters;
    tracked.tolerance = 1e-300; // tracking on, exit never taken

    for (const bool bregman : {false, true}) {
        const Image2D a = bregman
            ? image::denoiseSplitBregman(noisy, fixed_iters)
            : image::denoiseChambolle(noisy, fixed_iters);
        const Image2D b = bregman
            ? image::denoiseSplitBregman(noisy, tracked)
            : image::denoiseChambolle(noisy, tracked);
        ASSERT_EQ(a.size(), b.size());
        EXPECT_EQ(std::memcmp(a.data().data(), b.data().data(),
                              a.size() * sizeof(float)),
                  0)
            << (bregman ? "split-bregman" : "chambolle");
    }
}

TEST(Denoise, LargeToleranceStopsAfterOneIteration)
{
    Rng rng(43);
    Image2D noisy = testPattern();
    image::addGaussianNoise(noisy, 0.08, rng);

    image::TvParams one_iter{0.05, 1};
    image::TvParams early{0.05, 50};
    early.tolerance = 1e9; // every update is below this

    for (const bool bregman : {false, true}) {
        const Image2D a = bregman
            ? image::denoiseSplitBregman(noisy, one_iter)
            : image::denoiseChambolle(noisy, one_iter);
        const Image2D b = bregman
            ? image::denoiseSplitBregman(noisy, early)
            : image::denoiseChambolle(noisy, early);
        ASSERT_EQ(a.size(), b.size());
        EXPECT_EQ(std::memcmp(a.data().data(), b.data().data(),
                              a.size() * sizeof(float)),
                  0)
            << (bregman ? "split-bregman" : "chambolle");
    }
}

TEST(Denoise, DegenerateShapesSurviveTheLoopSplits)
{
    // 1xN / Nx1 / tiny images exercise every peeled boundary case of
    // the branch-free interior loops.
    const std::pair<size_t, size_t> sizes[] = {
        {1, 1}, {1, 8}, {8, 1}, {2, 2}, {3, 3}};
    for (const auto &[w, h] : sizes) {
        const Image2D img = noisyImage(w, h, 300 + w * 13 + h);
        const image::TvParams tv{0.1, 5};
        const Image2D c = image::denoiseChambolle(img, tv);
        const Image2D b = image::denoiseSplitBregman(img, tv);
        EXPECT_EQ(c.width(), w);
        EXPECT_EQ(b.height(), h);
        for (const float v : c.data())
            EXPECT_TRUE(std::isfinite(v));
        for (const float v : b.data())
            EXPECT_TRUE(std::isfinite(v));
    }
}

// ---- QC on degenerate slices ------------------------------------------

bool
allMetricsFinite(const image::QcMetrics &m)
{
    return std::isfinite(m.snr) && std::isfinite(m.focusScore) &&
        std::isfinite(m.saturationFraction) &&
        std::isfinite(m.deadRowFraction) &&
        std::isfinite(m.stripeScore) && std::isfinite(m.miVsPrev);
}

TEST(Qc, ZeroVarianceSliceYieldsFiniteMetrics)
{
    // A single-material frame (constant intensity) has zero scene
    // variance and zero noise sigma: both SNR numerator and
    // denominator are degenerate.  The metrics must stay finite and
    // the dead-row detector must fire instead of dividing by zero.
    const Image2D flat(64, 48, 0.37f);
    const auto m = image::computeQcMetrics(flat);
    EXPECT_TRUE(allMetricsFinite(m));
    EXPECT_DOUBLE_EQ(m.deadRowFraction, 1.0);
    EXPECT_TRUE(m.flags & image::kQcDeadRows);
    EXPECT_DOUBLE_EQ(m.saturationFraction, 0.0);
}

TEST(Qc, FullySaturatedSliceIsFlaggedWithFiniteMetrics)
{
    image::QcThresholds t;
    const Image2D bloom(
        64, 48, static_cast<float>(t.saturationLevel) + 0.5f);
    const auto m = image::computeQcMetrics(bloom, t);
    EXPECT_TRUE(allMetricsFinite(m));
    EXPECT_DOUBLE_EQ(m.saturationFraction, 1.0);
    EXPECT_TRUE(m.flags & image::kQcSaturation);
    // Saturated-constant is also dead rows; both detectors agree.
    EXPECT_TRUE(m.flags & image::kQcDeadRows);
}

TEST(Qc, TinyAndSkinnySlicesSurviveEveryMetric)
{
    // 1xN / Nx1 / 1x1 frames exercise the interior-free edge cases of
    // the Laplacian, gradient, and column-profile kernels.
    for (const auto &[w, h] : {std::pair<size_t, size_t>{1, 1},
                               {1, 16},
                               {16, 1},
                               {2, 2}}) {
        Image2D img(w, h);
        common::Rng rng(7, w * 100 + h);
        for (float &v : img.data())
            v = static_cast<float>(rng.uniform());
        const auto m = image::computeQcMetrics(img);
        EXPECT_TRUE(allMetricsFinite(m)) << w << "x" << h;
        EXPECT_TRUE(std::isfinite(image::stripeScore(img)));
        EXPECT_TRUE(std::isfinite(image::estimateNoiseSigma(img)));
        EXPECT_TRUE(std::isfinite(image::gradientEnergy(img)));
    }
}

TEST(Qc, MonitorHandlesDegenerateHistoryWithoutBlowingUp)
{
    // Feed the stateful monitor a run of degenerate slices: constant
    // reference, then a constant candidate (zero-variance MI), then a
    // normal frame.  Every evaluation must stay finite and the
    // monitor must keep accepting input.
    image::QcMonitor monitor;
    const Image2D flat(32, 32, 0.5f);
    auto m0 = monitor.evaluate(flat);
    EXPECT_TRUE(allMetricsFinite(m0));
    monitor.accept(flat, m0);
    ASSERT_TRUE(monitor.hasReference());

    // MI of two identical constant frames is 0 (no information), not
    // NaN; the relative-MI check needs history and must not fire on
    // the first reference pair.
    const auto m1 = monitor.evaluate(flat);
    EXPECT_TRUE(allMetricsFinite(m1));

    Image2D textured(32, 32);
    common::Rng rng(11, 0);
    for (float &v : textured.data())
        v = static_cast<float>(rng.uniform());
    const auto m2 = monitor.evaluate(textured);
    EXPECT_TRUE(allMetricsFinite(m2));
    monitor.noteRejected(); // rejected-slice path is also finite
    const auto m3 = monitor.evaluate(textured);
    EXPECT_TRUE(allMetricsFinite(m3));
}

// ---- SIMD kernels vs the portable scalar path -----------------------

Image2D
simdNoisy(size_t w, size_t h, uint64_t seed)
{
    Image2D img(w, h);
    Rng rng(seed, 0);
    for (size_t y = 0; y < h; ++y)
        for (size_t x = 0; x < w; ++x)
            img.at(x, y) = static_cast<float>(rng.uniform()) +
                ((x / 7 + y / 5) % 2 ? 0.5f : 0.0f);
    return img;
}

void
expectBitwiseEqual(const Image2D &a, const Image2D &b,
                   const std::string &what)
{
    ASSERT_EQ(a.width(), b.width()) << what;
    ASSERT_EQ(a.height(), b.height()) << what;
    EXPECT_EQ(std::memcmp(a.data().data(), b.data().data(),
                          a.size() * sizeof(float)),
              0)
        << what << ": bits differ";
}

TEST(Simd, TvKernelsMatchPortableScalarBitwise)
{
    // Odd widths, single-row/column frames, borders, unaligned
    // sizes — the interior kernels' remainder loops all get hit.
    const size_t dims[][2] = {{48, 40}, {37, 23}, {8, 8}, {1, 9},
                              {9, 1},   {17, 3},  {3, 17}};
    for (const auto &d : dims) {
        const Image2D in = simdNoisy(d[0], d[1], 77);
        image::TvParams tv;
        tv.iterations = 12;
        tv.lambda = 0.15;
        tv.tolerance = 0.0;
        image::TvParams tvTol = tv;
        tvTol.tolerance = 1e-5; // delta-tracking variant

        const Image2D c1 = image::denoiseChambolle(in, tv);
        const Image2D b1 = image::denoiseSplitBregman(in, tv);
        const Image2D ct1 = image::denoiseChambolle(in, tvTol);
        const Image2D bt1 = image::denoiseSplitBregman(in, tvTol);

        common::simd::ScopedForceScalar off;
        const std::string tag = std::to_string(d[0]) + "x" +
            std::to_string(d[1]);
        expectBitwiseEqual(c1, image::denoiseChambolle(in, tv),
                           "chambolle " + tag);
        expectBitwiseEqual(b1, image::denoiseSplitBregman(in, tv),
                           "bregman " + tag);
        expectBitwiseEqual(ct1, image::denoiseChambolle(in, tvTol),
                           "chambolle-tol " + tag);
        expectBitwiseEqual(bt1, image::denoiseSplitBregman(in, tvTol),
                           "bregman-tol " + tag);
    }
}

TEST(Simd, MutualInformationMatchesReferenceOnBothPaths)
{
    const Image2D a = simdNoisy(37, 29, 5);
    const Image2D b = simdNoisy(37, 29, 6);
    for (const size_t bins : {16u, 64u, 256u}) {
        for (const long dy : {-3l, 0l, 2l})
            for (const long dx : {-2l, 0l, 5l}) {
                const double ref =
                    image::mutualInformationAtShiftReference(
                        a, b, dx, dy, bins);
                const double fast =
                    image::mutualInformationAtShift(a, b, dx, dy,
                                                    bins);
                double portable;
                {
                    common::simd::ScopedForceScalar off;
                    portable = image::mutualInformationAtShift(
                        a, b, dx, dy, bins);
                }
                EXPECT_EQ(std::memcmp(&ref, &fast, sizeof(double)),
                          0)
                    << "bins " << bins << " shift " << dx << ","
                    << dy;
                EXPECT_EQ(
                    std::memcmp(&ref, &portable, sizeof(double)), 0)
                    << "bins " << bins << " shift " << dx << ","
                    << dy << " (portable)";
            }
        // The fused one-shot entry point is the same computation.
        const double one = image::mutualInformation(a, b, bins);
        const double oneRef =
            image::mutualInformationAtShiftReference(a, b, 0, 0,
                                                     bins);
        EXPECT_EQ(std::memcmp(&one, &oneRef, sizeof(double)), 0)
            << "one-shot bins " << bins;
    }
}

TEST(Simd, RegisterShiftMiAgreesWithReferenceOnBothPaths)
{
    const Image2D fixed = simdNoisy(64, 48, 9);
    Image2D moving(64, 48, 0.0f);
    for (size_t y = 0; y < 48; ++y)
        for (size_t x = 0; x < 64; ++x)
            moving.at(x, y) = fixed.at((x + 61) % 64, (y + 2) % 48);
    image::MiParams mp;
    mp.maxShift = 4;
    mp.bins = 32;
    const auto want = image::registerShiftMiReference(fixed, moving,
                                                      mp);
    EXPECT_EQ(image::registerShiftMi(fixed, moving, mp), want);
    common::simd::ScopedForceScalar off;
    EXPECT_EQ(image::registerShiftMi(fixed, moving, mp), want);
}

} // namespace
