/**
 * @file
 * Tests for the property-based scenario fuzzer (core/fuzz.hh): the
 * serialized-reproducer round trip, sampler determinism, the greedy
 * shrinker's mechanics, thread-count purity of the outcome signature,
 * and a replay of the minimized regression corpus
 * (tests/fuzz_corpus.txt) that pins every bug the fuzzer has found.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "core/fuzz.hh"

#ifndef HIFI_FUZZ_CORPUS
#define HIFI_FUZZ_CORPUS "tests/fuzz_corpus.txt"
#endif

namespace
{

using namespace hifi;
using core::ScenarioParams;
using core::ScenarioResult;

bool
sameParams(const ScenarioParams &a, const ScenarioParams &b)
{
    return a.chipId == b.chipId && a.pairs == b.pairs &&
        a.stackedSas == b.stackedSas && a.corner == b.corner &&
        a.bitlineShorts == b.bitlineShorts &&
        a.bitlineOpens == b.bitlineOpens &&
        a.missingVias == b.missingVias &&
        a.particles == b.particles && a.faults == b.faults &&
        a.fullPipeline == b.fullPipeline && a.seed == b.seed;
}

std::vector<std::string>
corpusLines()
{
    std::ifstream in(HIFI_FUZZ_CORPUS);
    EXPECT_TRUE(in.good())
        << "cannot open corpus " << HIFI_FUZZ_CORPUS;
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line))
        if (!line.empty() && line[0] != '#')
            lines.push_back(line);
    return lines;
}

TEST(Fuzz, SerializeParseRoundtrip)
{
    ScenarioParams p;
    p.chipId = "C4";
    p.pairs = 3;
    p.stackedSas = 2;
    p.corner = models::ProcessCorner::Fast;
    p.bitlineShorts = 1;
    p.bitlineOpens = 2;
    p.missingVias = 1;
    p.particles = 1;
    p.faults = true;
    p.fullPipeline = true;
    p.seed = 123456789ull;

    const std::string line = core::serializeScenario(p);
    auto parsed = core::parseScenario(line);
    ASSERT_TRUE(parsed.ok()) << parsed.error().message;
    EXPECT_TRUE(sameParams(p, parsed.value())) << line;

    // Defaults round-trip too.
    const ScenarioParams defaults;
    auto parsed2 =
        core::parseScenario(core::serializeScenario(defaults));
    ASSERT_TRUE(parsed2.ok());
    EXPECT_TRUE(sameParams(defaults, parsed2.value()));
}

TEST(Fuzz, ParseRejectsMalformedInput)
{
    EXPECT_FALSE(core::parseScenario("").ok());
    EXPECT_FALSE(core::parseScenario("chip=B5 pairs=nope").ok());
    EXPECT_FALSE(core::parseScenario("corner=bogus").ok());
    EXPECT_FALSE(core::parseScenario("chip").ok());
    const auto bad = core::parseScenario("pairs=");
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.error().code, common::ErrorCode::InvalidArgument);
}

TEST(Fuzz, SampleScenarioIsPureInSeed)
{
    for (uint64_t s : {1ull, 42ull, 20125ull}) {
        const ScenarioParams a = core::sampleScenario(s);
        const ScenarioParams b = core::sampleScenario(s);
        EXPECT_TRUE(sameParams(a, b)) << "seed " << s;
        EXPECT_GE(a.pairs, 2u);
    }
    // Different seeds explore the space (at least two distinct
    // serializations among a small draw).
    std::set<std::string> distinct;
    for (uint64_t s = 1; s <= 8; ++s)
        distinct.insert(
            core::serializeScenario(core::sampleScenario(s)));
    EXPECT_GT(distinct.size(), 1u);
}

TEST(Fuzz, ShrinkFindsMinimalScenario)
{
    // Synthetic failure: anything with >= 3 pairs "fails".  The
    // shrinker should strip everything else down to defaults while
    // keeping the smallest still-failing pair count.
    ScenarioParams big;
    big.chipId = "C5";
    big.pairs = 5;
    big.stackedSas = 2;
    big.corner = models::ProcessCorner::Slow;
    big.bitlineShorts = 1;
    big.particles = 1;
    big.faults = true;
    big.fullPipeline = true;
    big.seed = 7;

    size_t evals = 0;
    const auto fails = [&](const ScenarioParams &c) {
        ++evals;
        return c.pairs >= 3;
    };
    const ScenarioParams small = core::shrinkScenario(big, fails);
    EXPECT_EQ(small.pairs, 3u);
    EXPECT_EQ(small.stackedSas, 1u);
    EXPECT_EQ(small.corner, models::ProcessCorner::Typical);
    EXPECT_EQ(small.defectTotal(), 0u);
    EXPECT_FALSE(small.faults);
    EXPECT_FALSE(small.fullPipeline);
    EXPECT_EQ(small.chipId, "B5");
    EXPECT_LE(evals, 64u); // respects the evaluation budget

    // Failure tied to one defect kind survives with exactly that
    // kind.
    ScenarioParams defecty = big;
    defecty.bitlineOpens = 2;
    const ScenarioParams kept = core::shrinkScenario(
        defecty,
        [](const ScenarioParams &c) { return c.bitlineOpens >= 1; });
    EXPECT_GE(kept.bitlineOpens, 1u);
    EXPECT_EQ(kept.bitlineShorts, 0u);
    EXPECT_EQ(kept.particles, 0u);
    EXPECT_EQ(kept.missingVias, 0u);
}

TEST(Fuzz, ShrinkReturnsInputWhenNothingSimplerFails)
{
    ScenarioParams minimal; // defaults, already at the floor
    minimal.pairs = 2;
    const ScenarioParams out = core::shrinkScenario(
        minimal, [](const ScenarioParams &) { return true; });
    EXPECT_TRUE(sameParams(minimal, out));
}

TEST(Fuzz, SignatureIsThreadCountInvariant)
{
    ScenarioParams p;
    p.chipId = "B5";
    p.pairs = 3;
    p.bitlineShorts = 1;
    p.missingVias = 1;
    p.seed = 18;

    const ScenarioResult one = core::runScenario(p, 1);
    const ScenarioResult many = core::runScenario(p, 4);
    EXPECT_TRUE(one.passed()) << (one.violations.empty()
                                      ? ""
                                      : one.violations.front());
    EXPECT_TRUE(many.passed());
    EXPECT_EQ(one.signature, many.signature);
    EXPECT_NE(one.signature, 0u);

    // And deterministic run-to-run.
    const ScenarioResult again = core::runScenario(p, 1);
    EXPECT_EQ(one.signature, again.signature);
}

TEST(Fuzz, UnknownChipIsAViolationNotACrash)
{
    ScenarioParams p;
    p.chipId = "Z9";
    const ScenarioResult r = core::runScenario(p);
    EXPECT_FALSE(r.passed());
}

TEST(Fuzz, CorpusCoversKindsAndCorners)
{
    const auto lines = corpusLines();
    ASSERT_GE(lines.size(), 15u);
    std::set<std::string> corners, chips;
    bool shorts = false, opens = false, vias = false,
         particles = false, faults = false, full = false;
    for (const auto &line : lines) {
        auto parsed = core::parseScenario(line);
        ASSERT_TRUE(parsed.ok()) << line;
        const ScenarioParams &p = parsed.value();
        corners.insert(models::cornerName(p.corner));
        chips.insert(p.chipId);
        shorts = shorts || p.bitlineShorts > 0;
        opens = opens || p.bitlineOpens > 0;
        vias = vias || p.missingVias > 0;
        particles = particles || p.particles > 0;
        faults = faults || p.faults;
        full = full || p.fullPipeline;
    }
    EXPECT_EQ(corners.size(), 3u); // slow, typical, fast
    EXPECT_EQ(chips.size(), 6u);   // every chip model
    EXPECT_TRUE(shorts && opens && vias && particles);
    EXPECT_TRUE(faults); // fault-injected acquisition exercised
    EXPECT_TRUE(full);   // at least one full-pipeline scenario
}

TEST(Fuzz, CorpusReplaysClean)
{
    for (const auto &line : corpusLines()) {
        auto parsed = core::parseScenario(line);
        ASSERT_TRUE(parsed.ok()) << line;
        const ScenarioResult r = core::runScenario(parsed.value());
        EXPECT_TRUE(r.passed())
            << line
            << (r.violations.empty() ? ""
                                     : "\n  " + r.violations.front());
    }
}

} // namespace
