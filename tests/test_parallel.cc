/**
 * @file
 * Tests for the deterministic thread-pool substrate: partitioning
 * arithmetic, exception propagation, nested-call safety, the serial
 * path, and — the property everything else rests on — bitwise-equal
 * outputs of every parallel hot kernel at 1, 2, and 8 threads.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "circuit/mismatch.hh"
#include "circuit/sense_amp.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "common/telemetry.hh"
#include "fab/materials.hh"
#include "fab/sa_region.hh"
#include "fab/voxelizer.hh"
#include "image/denoise.hh"
#include "image/noise.hh"
#include "image/registration.hh"
#include "image/volume3d.hh"
#include "scope/sem.hh"

namespace
{

using namespace hifi;
using common::chunkBounds;
using common::chunkCount;
using image::Image2D;
using image::Volume3D;

/// Run `fn` under a fixed thread count and hand back its result.
template <typename Fn>
auto
withThreads(size_t threads, Fn fn)
{
    common::ScopedThreads scoped(threads);
    return fn();
}

bool
bitwiseEqual(const Image2D &a, const Image2D &b)
{
    return a.width() == b.width() && a.height() == b.height() &&
        std::memcmp(a.data().data(), b.data().data(),
                    a.size() * sizeof(float)) == 0;
}

bool
bitwiseEqual(const Volume3D &a, const Volume3D &b)
{
    if (a.nx() != b.nx() || a.ny() != b.ny() || a.nz() != b.nz())
        return false;
    for (size_t z = 0; z < a.nz(); ++z)
        for (size_t y = 0; y < a.ny(); ++y)
            for (size_t x = 0; x < a.nx(); ++x)
                if (a.at(x, y, z) != b.at(x, y, z))
                    return false;
    return true;
}

/// Structured noisy input for the image kernels.
Image2D
noisyPattern(size_t w, size_t h)
{
    common::Rng rng(21);
    Image2D img(w, h, 0.1f);
    for (size_t x = 4; x < w; x += 8)
        img.fillRect(static_cast<long>(x), 0,
                     static_cast<long>(x + 4),
                     static_cast<long>(h), 0.8f);
    image::addGaussianNoise(img, 0.05, rng);
    return img;
}

/// Deterministic material volume for the SEM kernel.
Volume3D
materialVolume(size_t nx = 8, size_t ny = 32, size_t nz = 24)
{
    Volume3D vol(nx, ny, nz, 0.0f);
    for (size_t z = 0; z < nz; ++z)
        for (size_t y = 0; y < ny; ++y)
            for (size_t x = 0; x < nx; ++x)
                vol.at(x, y, z) = static_cast<float>(
                    (x + 3 * y + 7 * z) % fab::kNumMaterials);
    return vol;
}

// ---- Partitioning arithmetic ----------------------------------------

TEST(Partition, ChunkCountArithmetic)
{
    EXPECT_EQ(chunkCount(0, 8), 0u);
    EXPECT_EQ(chunkCount(1, 8), 1u);
    EXPECT_EQ(chunkCount(8, 8), 1u);
    EXPECT_EQ(chunkCount(9, 8), 2u);
    EXPECT_EQ(chunkCount(17, 8), 3u);
    EXPECT_EQ(chunkCount(5, 0), 5u); // grain 0 degrades to 1
}

TEST(Partition, ChunksTileTheRangeExactly)
{
    const size_t begin = 3, end = 45, grain = 5;
    const size_t chunks = chunkCount(end - begin, grain);
    size_t expected = begin;
    for (size_t c = 0; c < chunks; ++c) {
        const auto [b, e] = chunkBounds(begin, end, grain, c);
        EXPECT_EQ(b, expected);
        EXPECT_GT(e, b);
        EXPECT_LE(e - b, grain);
        expected = e;
    }
    EXPECT_EQ(expected, end);
}

TEST(Partition, BoundsAreThreadCountIndependent)
{
    // The partition is pure arithmetic: no pool state involved.
    for (size_t t : {1u, 2u, 8u}) {
        common::ScopedThreads scoped(t);
        EXPECT_EQ(chunkBounds(0, 100, 16, 2),
                  (std::pair<size_t, size_t>{32, 48}));
    }
}

// ---- Pool behaviour -------------------------------------------------

TEST(ThreadPool, CoversEveryIndexExactlyOnce)
{
    common::ScopedThreads scoped(8);
    const size_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    common::parallelFor(0, n, 7, [&](size_t b, size_t e) {
        for (size_t i = b; i < e; ++i)
            ++hits[i];
    });
    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, SingleThreadRunsChunksInOrder)
{
    common::ScopedThreads scoped(1);
    std::vector<size_t> order; // no lock needed: serial by contract
    common::parallelForChunks(0, 40, 8,
                              [&](size_t chunk, size_t, size_t) {
                                  order.push_back(chunk);
                              });
    ASSERT_EQ(order.size(), 5u);
    for (size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, ExceptionPropagatesAndPoolSurvives)
{
    common::ScopedThreads scoped(4);
    EXPECT_THROW(
        common::parallelFor(0, 64, 4, [&](size_t b, size_t) {
            if (b == 32)
                throw std::runtime_error("chunk failure");
        }),
        std::runtime_error);

    // The pool must stay usable after a failed job.
    std::atomic<size_t> sum{0};
    common::parallelFor(0, 10, 2, [&](size_t b, size_t e) {
        for (size_t i = b; i < e; ++i)
            sum += i;
    });
    EXPECT_EQ(sum.load(), 45u);
}

TEST(ThreadPool, NestedCallsRunSeriallyAndCorrectly)
{
    common::ScopedThreads scoped(4);
    std::vector<size_t> inner_sums(8, 0);
    common::parallelFor(0, 8, 1, [&](size_t b, size_t e) {
        for (size_t i = b; i < e; ++i) {
            // Nested parallelFor: must not deadlock, must be correct.
            size_t sum = 0;
            common::parallelFor(0, 100, 10,
                                [&](size_t ib, size_t ie) {
                                    for (size_t j = ib; j < ie; ++j)
                                        sum += j;
                                });
            inner_sums[i] = sum + i;
        }
    });
    for (size_t i = 0; i < inner_sums.size(); ++i)
        EXPECT_EQ(inner_sums[i], 4950u + i);
}

TEST(ThreadPool, ConfigurationRoundTrip)
{
    const size_t before = common::numThreads();
    common::setNumThreads(3);
    EXPECT_EQ(common::numThreads(), 3u);
    {
        common::ScopedThreads scoped(5);
        EXPECT_EQ(common::numThreads(), 5u);
        common::ScopedThreads noop(0); // 0 leaves the pool alone
        EXPECT_EQ(common::numThreads(), 5u);
    }
    EXPECT_EQ(common::numThreads(), 3u);
    common::setNumThreads(0); // back to auto
    EXPECT_GE(common::numThreads(), 1u);
    common::setNumThreads(before);
}

TEST(ThreadPool, ReduceIsBitwiseStableAcrossThreadCounts)
{
    // Floating-point sums are order-sensitive; the chunk-order combine
    // must erase the thread count from the result bits.
    auto sum = [] {
        return common::parallelReduce(
            0, 10000, 64, 0.0,
            [](size_t b, size_t e) {
                double s = 0.0;
                for (size_t i = b; i < e; ++i)
                    s += 1.0 / static_cast<double>(i + 1);
                return s;
            },
            [](double a, double b) { return a + b; });
    };
    const double serial = withThreads(1, sum);
    EXPECT_EQ(serial, withThreads(2, sum));
    EXPECT_EQ(serial, withThreads(8, sum));
    EXPECT_NEAR(serial, 9.7876, 1e-3); // harmonic number H_10000
}

// ---- Bitwise determinism of the ported kernels ----------------------

class KernelDeterminism : public ::testing::Test
{
  protected:
    /// Assert fn() produces bitwise-identical results at 1/2/8 threads.
    template <typename Fn>
    void
    expectStable(Fn fn, const char *what)
    {
        const auto serial = withThreads(1, fn);
        EXPECT_TRUE(bitwiseEqual(serial, withThreads(2, fn)))
            << what << ": 2 threads diverged from serial";
        EXPECT_TRUE(bitwiseEqual(serial, withThreads(8, fn)))
            << what << ": 8 threads diverged from serial";
    }
};

TEST_F(KernelDeterminism, DenoiseChambolle)
{
    const Image2D noisy = noisyPattern(64, 48);
    expectStable([&] {
        return image::denoiseChambolle(noisy, {0.05, 30});
    }, "denoiseChambolle");
}

TEST_F(KernelDeterminism, DenoiseSplitBregman)
{
    const Image2D noisy = noisyPattern(64, 48);
    expectStable([&] {
        return image::denoiseSplitBregman(noisy, {0.05, 30});
    }, "denoiseSplitBregman");
}

TEST_F(KernelDeterminism, MiShiftSearch)
{
    const Image2D fixed = noisyPattern(48, 40);
    const Image2D moving = fixed.shifted(2, -1);
    auto reg = [&] {
        return image::registerShiftMi(fixed, moving, {16, 4});
    };
    const auto serial = withThreads(1, reg);
    EXPECT_EQ(serial, withThreads(2, reg));
    EXPECT_EQ(serial, withThreads(8, reg));
    EXPECT_EQ(serial, (std::pair<long, long>{-2, 1}));
}

TEST_F(KernelDeterminism, AlignStack)
{
    const Image2D base = noisyPattern(48, 40);
    const std::vector<std::pair<long, long>> drift = {
        {0, 0}, {1, 0}, {2, 1}, {1, 2}};
    std::vector<Image2D> slices;
    for (const auto &d : drift)
        slices.push_back(base.shifted(d.first, d.second));

    auto align = [&] { return image::alignStack(slices, {16, 4}); };
    const auto serial = withThreads(1, align);
    EXPECT_EQ(serial, withThreads(2, align));
    EXPECT_EQ(serial, withThreads(8, align));
}

TEST_F(KernelDeterminism, SemImage)
{
    const Volume3D materials = materialVolume();
    const scope::SemParams params;
    expectStable([&] {
        // Fresh generator per run: the frame seed must be the only
        // coupling between the caller's stream and the noise field.
        common::Rng rng(5);
        return scope::semImage(materials, 0, 8, params, rng);
    }, "semImage");
}

TEST_F(KernelDeterminism, SemImageClean)
{
    const Volume3D materials = materialVolume();
    const scope::SemParams params;
    expectStable([&] {
        return scope::semImageClean(materials, 0, 8, params);
    }, "semImageClean");
}

TEST_F(KernelDeterminism, VoxelizeSaRegion)
{
    fab::SaRegionSpec spec;
    spec.pairs = 2;
    fab::SaRegionTruth truth;
    const auto cell = fab::buildSaRegion(spec, truth);
    expectStable([&] {
        return fab::voxelize(*cell, truth.region, {5.0, 270.0});
    }, "voxelize");
}

TEST_F(KernelDeterminism, MonteCarloYield)
{
    circuit::SaParams base;
    base.topology = circuit::SaTopology::Classic;
    circuit::MismatchParams mc;
    mc.trials = 6;
    mc.seed = 7;
    mc.avtVnm = 9.0;
    circuit::TranParams tp = circuit::defaultSaTran();
    tp.dt = 50e-12;

    auto yield = [&] { return circuit::sensingYield(base, mc, tp); };
    const auto serial = withThreads(1, yield);
    for (size_t t : {2u, 8u}) {
        const auto run = withThreads(t, yield);
        EXPECT_EQ(run.trials, serial.trials) << t << " threads";
        EXPECT_EQ(run.failures, serial.failures) << t << " threads";
        // Exact double equality: chunk-ordered reduction.
        EXPECT_EQ(run.meanSignal, serial.meanSignal) << t
                                                     << " threads";
    }
}

// ---- Pool instrumentation is non-perturbing -------------------------

TEST(PoolInstrumentation, TelemetryDoesNotPerturbKernelOutput)
{
    // The instrumentation contract from parallel.hh: enabling a
    // telemetry session must not change one bit of any kernel
    // output — collection is observation only.
    const Image2D noisy = noisyPattern(64, 48);
    auto kernel = [&] {
        return image::denoiseChambolle(noisy, {0.05, 30});
    };
    const Image2D plain = withThreads(4, kernel);

    telemetry::Session session;
    const Image2D instrumented = withThreads(4, kernel);
    const auto collected = session.finish({});

    EXPECT_TRUE(bitwiseEqual(plain, instrumented))
        << "telemetry perturbed the denoise kernel";

    // ... and the session did observe the pool at work.
    ASSERT_TRUE(collected != nullptr);
    const auto jobs = collected->metrics.counters.find("pool.jobs");
    ASSERT_NE(jobs, collected->metrics.counters.end());
    EXPECT_GT(jobs->second, 0u);
    const auto chunks =
        collected->metrics.counters.find("pool.chunks");
    ASSERT_NE(chunks, collected->metrics.counters.end());
    EXPECT_GT(chunks->second, 0u);
    const auto hist = collected->metrics.histograms.find(
        "pool.chunks_per_job");
    ASSERT_NE(hist, collected->metrics.histograms.end());
    EXPECT_EQ(hist->second.count, jobs->second);
}

} // namespace
