/**
 * @file
 * Campaign service, staged pipeline and checkpoint tests.
 *
 * The contract under test is bit-identity: the staged pipeline, a
 * checkpoint/resume cycle (in-process, across chaos kills, or across
 * service restarts), the shared caches and any thread count must all
 * produce a report whose seed-pure digest equals the uninterrupted
 * monolithic run's.  On top of that: typed failure taxonomy for the
 * checkpoint codec, admission control / backpressure, cancellation,
 * the watchdog, deterministic seed namespaces, and a replay of the
 * fuzz regression corpus through the service path.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hh"
#include "core/fuzz.hh"
#include "core/stages.hh"
#include "scope/fib.hh"
#include "service/campaign.hh"
#include "service/checkpoint.hh"

#ifndef HIFI_FUZZ_CORPUS
#define HIFI_FUZZ_CORPUS "tests/fuzz_corpus.txt"
#endif

namespace
{

using hifi::common::ErrorCode;
using hifi::core::PipelineConfig;
using hifi::core::Stage;
using hifi::core::StagedState;
using hifi::service::CampaignService;
using hifi::service::JobState;
using hifi::service::ServiceConfig;

/** Standard test job: small but exercises every stage. */
PipelineConfig
testConfig(uint64_t seed, size_t pairs = 2)
{
    PipelineConfig config;
    config.chipId = "B5";
    config.pairs = pairs;
    config.faults.enabled = true;
    config.seed = seed;
    config.threads = 2;
    return config;
}

/**
 * Digest of the uninterrupted direct run, memoized on the config
 * identity so every test comparing against "the monolith" pays for
 * the reference run once.
 */
uint64_t
directDigest(const PipelineConfig &config)
{
    static std::map<uint64_t, uint64_t> memo;
    static std::mutex mu;
    const uint64_t key = hifi::service::configDigest(config);
    {
        std::lock_guard<std::mutex> lock(mu);
        const auto it = memo.find(key);
        if (it != memo.end())
            return it->second;
    }
    const auto run = hifi::core::runPipelineChecked(config);
    EXPECT_TRUE(run.ok()) << (run.ok() ? "" : run.error().message);
    const uint64_t digest =
        run.ok() ? hifi::core::reportDigest(run.value()) : 0;
    std::lock_guard<std::mutex> lock(mu);
    memo.emplace(key, digest);
    return digest;
}

/// Fresh (pre-cleaned) per-test scratch directory.
std::string
scratchDir(const std::string &name)
{
    const auto dir = std::filesystem::temp_directory_path() /
        ("hifi_test_service_" + name);
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir.string();
}

/// Run the staged pipeline to completion; returns the final digest.
uint64_t
runStagedToEnd(const PipelineConfig &config, StagedState &state)
{
    while (state.next != Stage::Done) {
        const auto err = hifi::core::runStage(config, state);
        EXPECT_FALSE(err) << (err ? err->message : "");
        if (err)
            return 0;
    }
    return hifi::core::reportDigest(state.report);
}

} // namespace

// ---------------------------------------------------------------
// Staged decomposition.
// ---------------------------------------------------------------

TEST(Stages, StagedRunMatchesMonolithAcrossThreadCounts)
{
    const PipelineConfig base = testConfig(42);
    const uint64_t reference = directDigest(base);
    ASSERT_NE(reference, 0u);

    for (size_t threads : {size_t{1}, size_t{8}}) {
        PipelineConfig config = base;
        config.threads = threads;
        auto init = hifi::core::initStagedRun(config);
        ASSERT_TRUE(init.ok()) << init.error().message;
        StagedState state = init.takeValue();
        // The cursor walks the stages in declared order.
        EXPECT_EQ(state.next, Stage::Fab);
        EXPECT_EQ(runStagedToEnd(config, state), reference)
            << "threads=" << threads;
        EXPECT_EQ(state.next, Stage::Done);
    }
}

TEST(Stages, RunStageOnDoneIsTypedError)
{
    const PipelineConfig config = testConfig(1);
    StagedState state;
    state.next = Stage::Done;
    const auto err = hifi::core::runStage(config, state);
    ASSERT_TRUE(err);
    EXPECT_EQ(err->code, ErrorCode::FailedPrecondition);
}

TEST(Stages, StageNamesAreStable)
{
    EXPECT_STREQ(hifi::core::stageName(Stage::Fab), "fab");
    EXPECT_STREQ(hifi::core::stageName(Stage::Acquire), "acquire");
    EXPECT_STREQ(hifi::core::stageName(Stage::Postprocess),
                 "postprocess");
    EXPECT_STREQ(hifi::core::stageName(Stage::Analyze), "analyze");
    EXPECT_STREQ(hifi::core::stageName(Stage::Finalize), "finalize");
}

// ---------------------------------------------------------------
// Checkpoint codec.
// ---------------------------------------------------------------

TEST(Checkpoint, ResumeAtEveryStageBoundaryIsBitIdentical)
{
    PipelineConfig config = testConfig(42);
    config.threads = 1;

    // Reference run, capturing the checkpoint image at every stage
    // boundary the service would checkpoint at.
    auto init = hifi::core::initStagedRun(config);
    ASSERT_TRUE(init.ok());
    StagedState state = init.takeValue();
    std::vector<std::string> boundaries;
    while (state.next != Stage::Done) {
        ASSERT_FALSE(hifi::core::runStage(config, state));
        if (state.next != Stage::Done)
            boundaries.push_back(
                hifi::service::encodeCheckpoint(config, state));
    }
    const uint64_t reference = hifi::core::reportDigest(state.report);
    EXPECT_EQ(reference, directDigest(testConfig(42)));
    ASSERT_EQ(boundaries.size(), hifi::core::kNumStages - 1);

    // The image shrinks once the bulky early artifacts are dropped:
    // the post-Analyze checkpoint carries no artifact at all.
    EXPECT_LT(boundaries.back().size(), boundaries.front().size());

    // Resume from every boundary, cycling the thread count through
    // 1/2/8 — the completed report must be bitwise-identical.
    const size_t threadCycle[] = {1, 2, 8};
    for (size_t i = 0; i < boundaries.size(); ++i) {
        PipelineConfig resumed = config;
        resumed.threads = threadCycle[i % 3];
        auto decoded =
            hifi::service::decodeCheckpoint(boundaries[i], resumed);
        ASSERT_TRUE(decoded.ok()) << decoded.error().message;
        StagedState replay = decoded.takeValue();
        EXPECT_EQ(static_cast<size_t>(replay.next), i + 1);
        EXPECT_EQ(runStagedToEnd(resumed, replay), reference)
            << "boundary " << i << ", threads "
            << threadCycle[i % 3];
    }
}

TEST(Checkpoint, TypedFailureTaxonomy)
{
    PipelineConfig config = testConfig(7);
    config.threads = 1;
    auto init = hifi::core::initStagedRun(config);
    ASSERT_TRUE(init.ok());
    StagedState state = init.takeValue();
    ASSERT_FALSE(hifi::core::runStage(config, state)); // Fab only
    const std::string image =
        hifi::service::encodeCheckpoint(config, state);

    // Pristine image decodes.
    EXPECT_TRUE(hifi::service::decodeCheckpoint(image, config).ok());

    // Threads are operational, not identity: a different thread
    // count still accepts the checkpoint.
    PipelineConfig rethreaded = config;
    rethreaded.threads = 8;
    EXPECT_TRUE(
        hifi::service::decodeCheckpoint(image, rethreaded).ok());

    // A flipped payload byte is DataLoss.
    std::string corrupt = image;
    corrupt[corrupt.size() / 2] ^= 0x5a;
    auto bad = hifi::service::decodeCheckpoint(corrupt, config);
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.error().code, ErrorCode::DataLoss);

    // Truncation (torn write) is DataLoss.
    auto torn = hifi::service::decodeCheckpoint(
        image.substr(0, image.size() - 9), config);
    ASSERT_FALSE(torn.ok());
    EXPECT_EQ(torn.error().code, ErrorCode::DataLoss);

    // A result-affecting config change is FailedPrecondition.
    PipelineConfig reseeded = config;
    reseeded.seed = config.seed + 1;
    auto mismatch = hifi::service::decodeCheckpoint(image, reseeded);
    ASSERT_FALSE(mismatch.ok());
    EXPECT_EQ(mismatch.error().code, ErrorCode::FailedPrecondition);
    EXPECT_NE(hifi::service::configDigest(config),
              hifi::service::configDigest(reseeded));

    // File round trip: save atomically, load, digests agree.
    const std::string dir = scratchDir("codec");
    const std::string path = dir + "/job.ckpt";
    EXPECT_FALSE(hifi::service::saveCheckpoint(path, config, state));
    auto loaded = hifi::service::loadCheckpoint(path, config);
    ASSERT_TRUE(loaded.ok()) << loaded.error().message;
    EXPECT_EQ(
        hifi::service::encodeCheckpoint(config, loaded.value()),
        image);

    // Removal yields NotFound, the "start from scratch" signal.
    hifi::service::removeCheckpoint(path);
    auto gone = hifi::service::loadCheckpoint(path, config);
    ASSERT_FALSE(gone.ok());
    EXPECT_EQ(gone.error().code, ErrorCode::NotFound);
}

TEST(Checkpoint, TiledImagesResumeAtEveryStageBoundary)
{
    PipelineConfig config = testConfig(42);
    config.threads = 1;
    const std::string dir = scratchDir("tiled_codec");

    auto makeStore = [&] {
        hifi::image::TileStoreConfig tc;
        tc.dir = dir + "/tiles";
        return std::make_shared<hifi::image::TileStore>(
            std::move(tc));
    };

    // Save a tile-referencing checkpoint at every boundary.
    auto tiles = makeStore();
    auto init = hifi::core::initStagedRun(config);
    ASSERT_TRUE(init.ok());
    StagedState state = init.takeValue();
    std::vector<std::string> paths;
    while (state.next != Stage::Done) {
        ASSERT_FALSE(hifi::core::runStage(config, state));
        if (state.next != Stage::Done) {
            const std::string path = dir + "/boundary_" +
                std::to_string(paths.size()) + ".ckpt";
            ASSERT_FALSE(hifi::service::saveCheckpoint(
                path, config, state, tiles));
            paths.push_back(path);
        }
    }
    const uint64_t reference = hifi::core::reportDigest(state.report);
    ASSERT_EQ(paths.size(), hifi::core::kNumStages - 1);

    // A tile-referencing image stays small at the bulky boundaries:
    // the voxels live in the store, the image holds digests.
    const auto v1Bytes =
        hifi::service::encodeCheckpoint(config, state).size();
    for (const std::string &path : paths)
        EXPECT_LT(std::filesystem::file_size(path), 1u << 20)
            << path;
    (void)v1Bytes;

    // Resume from every boundary with a FRESH store instance over the
    // same directory (a restarted process re-pins from disk), cycling
    // thread counts; the final report must be bitwise-identical.
    const size_t threadCycle[] = {1, 2, 8};
    for (size_t i = 0; i < paths.size(); ++i) {
        PipelineConfig resumed = config;
        resumed.threads = threadCycle[i % 3];
        auto fresh = makeStore();
        auto loaded =
            hifi::service::loadCheckpoint(paths[i], resumed, fresh);
        ASSERT_TRUE(loaded.ok()) << loaded.error().message;
        StagedState replay = loaded.takeValue();
        EXPECT_EQ(static_cast<size_t>(replay.next), i + 1);
        EXPECT_EQ(runStagedToEnd(resumed, replay), reference)
            << "boundary " << i << ", threads "
            << threadCycle[i % 3];
    }

    // Re-saving an unchanged artifact dedups against the store: no
    // new tile bytes are spilled.
    const uint64_t spilledBefore = tiles->stats().spilledBytes;
    auto reinit = hifi::core::initStagedRun(config);
    ASSERT_TRUE(reinit.ok());
    StagedState again = reinit.takeValue();
    ASSERT_FALSE(hifi::core::runStage(config, again)); // Fab
    ASSERT_FALSE(hifi::service::saveCheckpoint(
        dir + "/resave.ckpt", config, again, tiles));
    EXPECT_EQ(tiles->stats().spilledBytes, spilledBefore);
}

TEST(Checkpoint, TiledImageNeedsAStoreToDecode)
{
    PipelineConfig config = testConfig(7);
    config.threads = 1;
    const std::string dir = scratchDir("tiled_nostore");
    hifi::image::TileStoreConfig tc;
    tc.dir = dir + "/tiles";
    auto tiles =
        std::make_shared<hifi::image::TileStore>(std::move(tc));

    auto init = hifi::core::initStagedRun(config);
    ASSERT_TRUE(init.ok());
    StagedState state = init.takeValue();
    ASSERT_FALSE(hifi::core::runStage(config, state)); // Fab
    auto image =
        hifi::service::encodeCheckpoint(config, state, tiles);
    ASSERT_TRUE(image.ok()) << image.error().message;

    // With the store the image decodes; without one the reader must
    // refuse up front (FailedPrecondition), not crash or guess.
    EXPECT_TRUE(hifi::service::decodeCheckpoint(image.value(), config,
                                                tiles)
                    .ok());
    auto blind =
        hifi::service::decodeCheckpoint(image.value(), config);
    ASSERT_FALSE(blind.ok());
    EXPECT_EQ(blind.error().code, ErrorCode::FailedPrecondition);
}

TEST(Checkpoint, MissingOrCorruptTilesSurfaceAsDataLoss)
{
    PipelineConfig config = testConfig(11);
    config.threads = 1;
    const std::string dir = scratchDir("tiled_corrupt");
    const std::string tileDir = dir + "/tiles";

    auto makeStore = [&] {
        hifi::image::TileStoreConfig tc;
        tc.dir = tileDir;
        return std::make_shared<hifi::image::TileStore>(
            std::move(tc));
    };

    // Checkpoint right after Postprocess: the image references the
    // processed volume's tiles.
    auto tiles = makeStore();
    auto init = hifi::core::initStagedRun(config);
    ASSERT_TRUE(init.ok());
    StagedState state = init.takeValue();
    while (state.next != Stage::Analyze)
        ASSERT_FALSE(hifi::core::runStage(config, state));
    const std::string path = dir + "/job.ckpt";
    ASSERT_FALSE(
        hifi::service::saveCheckpoint(path, config, state, tiles));

    std::vector<std::filesystem::path> tileFiles;
    for (const auto &entry :
         std::filesystem::directory_iterator(tileDir))
        if (entry.path().extension() == ".tile")
            tileFiles.push_back(entry.path());
    ASSERT_FALSE(tileFiles.empty());

    // Baseline: an intact set of tiles loads and finishes.
    {
        auto loaded =
            hifi::service::loadCheckpoint(path, config, makeStore());
        ASSERT_TRUE(loaded.ok()) << loaded.error().message;
    }

    auto corruptedRunFails = [&](const char *what) {
        // The decode may defer tile reads, so the loss is allowed to
        // surface either at load or when the resumed stage touches
        // the tile — but it must be typed DataLoss, never a crash or
        // a silently wrong resume.
        auto loaded =
            hifi::service::loadCheckpoint(path, config, makeStore());
        if (!loaded.ok()) {
            EXPECT_EQ(loaded.error().code, ErrorCode::DataLoss)
                << what << ": " << loaded.error().message;
            return;
        }
        StagedState replay = loaded.takeValue();
        std::optional<hifi::common::Error> err;
        while (replay.next != Stage::Done) {
            err = hifi::core::runStage(config, replay);
            if (err)
                break;
        }
        ASSERT_TRUE(err.has_value())
            << what << ": corrupted tile resumed silently";
        EXPECT_EQ(err->code, ErrorCode::DataLoss)
            << what << ": " << err->message;
    };

    const auto victim = tileFiles.front();
    std::vector<char> original;
    {
        std::ifstream in(victim, std::ios::binary);
        original.assign(std::istreambuf_iterator<char>(in), {});
    }

    // Truncated tile (torn write).
    std::filesystem::resize_file(victim, original.size() / 2);
    corruptedRunFails("truncated");

    // Bit flip in the payload.
    {
        std::vector<char> flipped = original;
        flipped[flipped.size() - 7] ^= 0x20;
        std::ofstream out(victim,
                          std::ios::binary | std::ios::trunc);
        out.write(flipped.data(),
                  static_cast<std::streamsize>(flipped.size()));
    }
    corruptedRunFails("bit-flipped");

    // Missing tile file.
    std::filesystem::remove(victim);
    corruptedRunFails("missing");

    // Restore the original bytes: the same checkpoint resumes again
    // (proves the failures above came from the injected damage).
    {
        std::ofstream out(victim,
                          std::ios::binary | std::ios::trunc);
        out.write(original.data(),
                  static_cast<std::streamsize>(original.size()));
    }
    auto healed =
        hifi::service::loadCheckpoint(path, config, makeStore());
    ASSERT_TRUE(healed.ok()) << healed.error().message;
    StagedState replay = healed.takeValue();
    EXPECT_EQ(runStagedToEnd(config, replay),
              directDigest(testConfig(11)));
}

// ---------------------------------------------------------------
// Campaign service.
// ---------------------------------------------------------------

TEST(Service, CompletesJobsAndSharesTheFabCache)
{
    ServiceConfig cfg;
    cfg.workers = 1; // serialize so the 2nd job sees the 1st's fab
    cfg.volumeCacheCapacity = 2;
    CampaignService service(cfg);

    const PipelineConfig job = testConfig(42);
    const auto a = service.submit("cache-a", job);
    const auto b = service.submit("cache-b", job);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    service.drain();

    const auto sa = service.status(a.value());
    const auto sb = service.status(b.value());
    ASSERT_EQ(sa.state, JobState::Completed);
    ASSERT_EQ(sb.state, JobState::Completed);

    const uint64_t reference = directDigest(job);
    EXPECT_EQ(sa.reportDigest, reference);
    EXPECT_EQ(sb.reportDigest, reference);

    // The first job ran all stages; the second was admitted to the
    // content-addressed volume cache and skipped Fab entirely.
    EXPECT_EQ(sa.stagesRun, hifi::core::kNumStages);
    EXPECT_EQ(sb.stagesRun, hifi::core::kNumStages - 1);

    // result() hands out the completed report.
    auto report = service.result(b.value());
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(hifi::core::reportDigest(report.value()), reference);

    const std::string health = service.healthJson();
    EXPECT_NE(health.find("service.jobs.completed"),
              std::string::npos);
    EXPECT_NE(health.find("service.cache.volume.hit"),
              std::string::npos);
}

TEST(Service, ChaosKillAtEveryBoundaryResumesBitIdentical)
{
    // killProbability 1.0 crashes the job after every checkpoint, so
    // each attempt advances exactly one stage: the whole run is an
    // exact, deterministic tour of the recovery machinery.
    ServiceConfig cfg;
    cfg.workers = 1;
    cfg.checkpointDir = scratchDir("chaos");
    cfg.chaos.enabled = true;
    cfg.chaos.killProbability = 1.0;
    cfg.retry.maxAttempts = hifi::core::kNumStages + 2;
    cfg.retry.backoffBaseMs = 0.1;
    CampaignService service(cfg);

    const PipelineConfig job = testConfig(42);
    const auto id = service.submit("chaos", job);
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE(service.wait(id.value(), 240.0));

    const auto st = service.status(id.value());
    ASSERT_EQ(st.state, JobState::Completed)
        << (st.error ? st.error->message : "");
    EXPECT_EQ(st.reportDigest, directDigest(job));
    EXPECT_EQ(st.attempts, hifi::core::kNumStages);
    EXPECT_EQ(st.stagesRun, hifi::core::kNumStages);
    EXPECT_EQ(st.chaosKills, hifi::core::kNumStages - 1);
    EXPECT_EQ(st.resumes, hifi::core::kNumStages - 1);
    EXPECT_EQ(st.checkpointsSaved, hifi::core::kNumStages - 1);
    EXPECT_FALSE(st.error);

    // The completed job removed its checkpoint.
    auto leftover = hifi::service::loadCheckpoint(
        cfg.checkpointDir + "/job-chaos.ckpt", job);
    EXPECT_FALSE(leftover.ok());
    EXPECT_EQ(leftover.error().code, ErrorCode::NotFound);
}

TEST(Service, ShutdownInterruptsAndARestartedServiceResumes)
{
    const std::string dir = scratchDir("restart");
    const PipelineConfig job = testConfig(42);
    const uint64_t reference = directDigest(job);

    // Phase 1: stop the service as soon as the job has checkpointed
    // once; the in-flight job parks as Interrupted.
    uint64_t interruptedStages = 0;
    {
        ServiceConfig cfg;
        cfg.workers = 1;
        cfg.checkpointDir = dir;
        CampaignService service(cfg);
        const auto id = service.submit("restart", job);
        ASSERT_TRUE(id.ok());
        const auto deadline = std::chrono::steady_clock::now() +
            std::chrono::seconds(120);
        while (service.status(id.value()).checkpointsSaved == 0) {
            ASSERT_LT(std::chrono::steady_clock::now(), deadline)
                << "job never checkpointed";
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10));
        }
        service.shutdown();
        const auto st = service.status(id.value());
        ASSERT_EQ(st.state, JobState::Interrupted);
        EXPECT_GE(st.checkpointsSaved, 1u);
        interruptedStages = st.stagesRun;
    }

    // Phase 2: a fresh service on the same checkpoint directory picks
    // the job up where it stopped and finishes it bit-identically.
    {
        ServiceConfig cfg;
        cfg.workers = 1;
        cfg.checkpointDir = dir;
        CampaignService service(cfg);
        const auto id = service.submit("restart", job);
        ASSERT_TRUE(id.ok());
        ASSERT_TRUE(service.wait(id.value(), 240.0));
        const auto st = service.status(id.value());
        ASSERT_EQ(st.state, JobState::Completed)
            << (st.error ? st.error->message : "");
        EXPECT_EQ(st.reportDigest, reference);
        EXPECT_GE(st.resumes, 1u);
        // Only the unfinished stages replay.
        EXPECT_EQ(st.stagesRun + interruptedStages,
                  hifi::core::kNumStages);
    }
}

TEST(Service, BackpressureAndAdmissionControl)
{
    const PipelineConfig job = testConfig(3, /*pairs=*/1);

    {
        // Queue-depth backpressure: depth 1 means one non-terminal
        // job saturates the service.
        ServiceConfig cfg;
        cfg.workers = 1;
        cfg.maxQueueDepth = 1;
        CampaignService service(cfg);
        const auto first = service.submit("bp-0", job);
        ASSERT_TRUE(first.ok());
        const auto second = service.submit("bp-1", job);
        ASSERT_FALSE(second.ok());
        EXPECT_EQ(second.error().code, ErrorCode::ResourceExhausted);
        service.cancel(first.value());
        service.drain();
    }

    const double costHours = hifi::scope::campaignCost(
        hifi::models::chip(job.chipId)).totalHours;
    {
        // Per-job cost ceiling.
        ServiceConfig cfg;
        cfg.maxJobHours = costHours * 0.5;
        CampaignService service(cfg);
        const auto rejected = service.submit("too-big", job);
        ASSERT_FALSE(rejected.ok());
        EXPECT_EQ(rejected.error().code,
                  ErrorCode::ResourceExhausted);
    }
    {
        // Summed queued-hours budget: the first job fits, the second
        // would exceed it.
        ServiceConfig cfg;
        cfg.workers = 1;
        cfg.maxQueuedHours = costHours * 1.5;
        CampaignService service(cfg);
        const auto first = service.submit("budget-0", job);
        ASSERT_TRUE(first.ok());
        const auto second = service.submit("budget-1", job);
        ASSERT_FALSE(second.ok());
        EXPECT_EQ(second.error().code, ErrorCode::ResourceExhausted);
        service.cancel(first.value());
        service.drain();
    }
    {
        // validateConfig failures pass through typed.
        ServiceConfig cfg;
        CampaignService service(cfg);
        PipelineConfig unknown = job;
        unknown.chipId = "no-such-chip";
        auto r = service.submit("bad-chip", unknown);
        ASSERT_FALSE(r.ok());
        EXPECT_EQ(r.error().code, ErrorCode::NotFound);
        PipelineConfig zero = job;
        zero.pairs = 0;
        r = service.submit("bad-pairs", zero);
        ASSERT_FALSE(r.ok());
        EXPECT_EQ(r.error().code, ErrorCode::InvalidArgument);
    }
}

TEST(Service, CancellationIsCooperativeAndTyped)
{
    ServiceConfig cfg;
    cfg.workers = 1;
    cfg.maxQueueDepth = 4;
    CampaignService service(cfg);
    const PipelineConfig job = testConfig(5, /*pairs=*/1);

    const auto running = service.submit("cancel-running", job);
    const auto queued = service.submit("cancel-queued", job);
    ASSERT_TRUE(running.ok());
    ASSERT_TRUE(queued.ok());

    // The queued job cancels immediately; the running one at its
    // next stage boundary.  Both end Cancelled with a typed error.
    EXPECT_TRUE(service.cancel(queued.value()));
    EXPECT_TRUE(service.wait(queued.value(), 10.0));
    EXPECT_TRUE(service.cancel(running.value()));
    EXPECT_TRUE(service.wait(running.value(), 120.0));

    for (const uint64_t id : {queued.value(), running.value()}) {
        const auto st = service.status(id);
        EXPECT_EQ(st.state, JobState::Cancelled);
        ASSERT_TRUE(st.error);
        EXPECT_EQ(st.error->code, ErrorCode::Cancelled);
        // result() reports the cancellation, not a report.
        auto r = service.result(id);
        ASSERT_FALSE(r.ok());
        EXPECT_EQ(r.error().code, ErrorCode::Cancelled);
    }

    // Cancelling an unknown or already-terminal job is a no-op.
    EXPECT_FALSE(service.cancel(999999));
    EXPECT_FALSE(service.cancel(queued.value()));
}

TEST(Service, SeedNamespaceIsDeterministicAcrossInstances)
{
    const PipelineConfig job = testConfig(123, /*pairs=*/1);
    std::vector<std::vector<uint64_t>> seeds;
    for (int instance = 0; instance < 2; ++instance) {
        ServiceConfig cfg;
        cfg.workers = 1;
        cfg.maxQueueDepth = 4;
        cfg.seedNamespace = 0xbeef;
        CampaignService service(cfg);
        std::vector<uint64_t> got;
        std::vector<uint64_t> ids;
        for (int i = 0; i < 2; ++i) {
            const auto id = service.submit(
                "ns-" + std::to_string(i), job);
            ASSERT_TRUE(id.ok());
            ids.push_back(id.value());
            got.push_back(service.status(id.value()).effectiveSeed);
        }
        for (const uint64_t id : ids)
            service.cancel(id);
        service.drain();
        seeds.push_back(std::move(got));
    }
    // Same namespace + submission index => same seed, on any
    // instance; distinct indices => decorrelated seeds.
    EXPECT_EQ(seeds[0], seeds[1]);
    EXPECT_NE(seeds[0][0], seeds[0][1]);
    EXPECT_EQ(seeds[0][0], hifi::common::Rng(0xbeef, 0).next());
    EXPECT_EQ(seeds[0][1], hifi::common::Rng(0xbeef, 1).next());
    // The namespace replaces the submitted seed.
    EXPECT_NE(seeds[0][0], job.seed);
}

TEST(Service, WatchdogDeadlineFailsTypedAfterRetries)
{
    // A deadline far below any stage's runtime: every attempt ends in
    // DeadlineExceeded (transient), the retry budget drains, and the
    // job fails typed — no hang, no exception.
    ServiceConfig cfg;
    cfg.workers = 1;
    cfg.stageTimeoutSec = 1e-4;
    cfg.retry.maxAttempts = 2;
    cfg.retry.backoffBaseMs = 0.1;
    CampaignService service(cfg);

    const auto id =
        service.submit("overrun", testConfig(9, /*pairs=*/1));
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE(service.wait(id.value(), 240.0));

    const auto st = service.status(id.value());
    ASSERT_EQ(st.state, JobState::Failed);
    ASSERT_TRUE(st.error);
    EXPECT_EQ(st.error->code, ErrorCode::DeadlineExceeded);
    EXPECT_EQ(st.attempts, 2u);
    EXPECT_GE(st.timeouts, 2u);
}

TEST(Service, FuzzCorpusReplayMatchesDirectRun)
{
    // A sampled subset of the checked-in regression corpus must
    // produce the same outcome signature through the service as
    // through the direct pipeline entry point.
    std::ifstream in(HIFI_FUZZ_CORPUS);
    ASSERT_TRUE(in.is_open()) << "missing corpus " << HIFI_FUZZ_CORPUS;
    std::vector<std::string> lines;
    for (std::string line; std::getline(in, line);)
        if (!line.empty() && line[0] != '#')
            lines.push_back(line);
    ASSERT_GE(lines.size(), 2u);

    ServiceConfig cfg;
    cfg.workers = 2;
    cfg.volumeCacheCapacity = 2;
    cfg.cleanFrameCacheCapacity = 8;
    CampaignService service(cfg);

    std::vector<std::pair<uint64_t, PipelineConfig>> submitted;
    for (const size_t pick : {size_t{0}, lines.size() / 2}) {
        auto parsed = hifi::core::parseScenario(lines[pick]);
        ASSERT_TRUE(parsed.ok()) << lines[pick];
        const auto &p = parsed.value();
        PipelineConfig pc;
        pc.chipId = p.chipId;
        pc.pairs = p.pairs;
        pc.stackedSas = p.stackedSas;
        pc.corner = p.corner;
        pc.defects.seed = p.seed;
        pc.defects.bitlineShorts = p.bitlineShorts;
        pc.defects.bitlineOpens = p.bitlineOpens;
        pc.defects.missingVias = p.missingVias;
        pc.defects.particles = p.particles;
        pc.faults.enabled = p.faults;
        pc.seed = p.seed;
        pc.threads = 2;
        const auto id = service.submit(
            "corpus-" + std::to_string(pick), pc);
        ASSERT_TRUE(id.ok()) << id.error().message;
        submitted.emplace_back(id.value(), pc);
    }
    service.drain();

    for (const auto &[id, pc] : submitted) {
        const auto st = service.status(id);
        ASSERT_EQ(st.state, JobState::Completed)
            << (st.error ? st.error->message : "");
        EXPECT_EQ(st.reportDigest, directDigest(pc))
            << "corpus job " << st.name;
    }
}

// ---------------------------------------------------------------
// Clean-frame cache (generalized LRU).
// ---------------------------------------------------------------

TEST(CleanFrameCache, LruEvictsLeastRecentAndReplaysExactly)
{
    hifi::scope::CleanFrameCache cache(2);
    size_t renders = 0;
    const auto render = [&renders](uint64_t key) {
        return [&renders, key]() {
            ++renders;
            return hifi::image::Image2D(
                2, 2, static_cast<float>(key));
        };
    };
    const auto fill = [](const hifi::image::Image2D &img) {
        return img.data().front();
    };

    EXPECT_EQ(fill(cache.fetch(1, render(1))), 1.0f); // miss
    EXPECT_EQ(fill(cache.fetch(2, render(2))), 2.0f); // miss
    EXPECT_EQ(renders, 2u);
    EXPECT_EQ(fill(cache.fetch(1, render(1))), 1.0f); // hit
    EXPECT_EQ(renders, 2u);
    EXPECT_EQ(fill(cache.fetch(3, render(3))), 3.0f); // evicts 2
    EXPECT_EQ(renders, 3u);
    EXPECT_EQ(cache.evictions(), 1u);
    EXPECT_EQ(fill(cache.fetch(2, render(2))), 2.0f); // re-render
    EXPECT_EQ(renders, 4u);
    EXPECT_EQ(cache.evictions(), 2u);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.capacity(), 2u);
}

TEST(CleanFrameCache, CapacityAndSharingNeverChangeTheAcquisition)
{
    // Any capacity >= 1, and shared vs private, must be invisible in
    // the output: the cache stores exact pure-function results.
    const size_t nx = 60, ny = 32, nz = 40;
    hifi::image::Volume3D vol(nx, ny, nz, 1.0f);
    for (size_t x = 0; x < nx; ++x)
        for (size_t y = 0; y < ny; ++y)
            for (size_t z = 0; z < nz; ++z) {
                float v = 1.0f;
                if (z >= 12 && z < 16)
                    v = 0.0f;
                else if (z >= 22 && z < 26)
                    v = 2.0f;
                else if (z >= 16 && z < 22 && (y + x / 2) % 10 < 2)
                    v = 3.0f;
                vol.at(x, y, z) = v;
            }

    hifi::scope::FibSemParams params;
    params.sliceVoxels = 2;
    params.driftProbability = 0.3;
    hifi::scope::FaultParams faults;
    faults = faults.scaled(2.0);
    faults.enabled = true;

    hifi::scope::RecoveryParams tiny;
    tiny.cleanCacheCapacity = 1;
    const hifi::scope::RecoveryParams roomy; // default capacity
    hifi::scope::CleanFrameCache shared(2);

    const auto a =
        hifi::scope::acquireRobust(vol, params, faults, tiny, 42);
    const auto b =
        hifi::scope::acquireRobust(vol, params, faults, roomy, 42);
    const auto c = hifi::scope::acquireRobust(
        vol, params, faults, roomy, 42, &shared, /*volumeKey=*/99);

    for (const auto *other : {&b, &c}) {
        EXPECT_EQ(a.retries, other->retries);
        EXPECT_EQ(a.interpolatedSlices, other->interpolatedSlices);
        EXPECT_EQ(a.qcConfidence, other->qcConfidence);
        ASSERT_EQ(a.stack.slices.size(), other->stack.slices.size());
        for (size_t s = 0; s < a.stack.slices.size(); ++s) {
            const auto &fa = a.stack.slices[s];
            const auto &fb = other->stack.slices[s];
            ASSERT_EQ(fa.size(), fb.size());
            EXPECT_EQ(std::memcmp(fa.data().data(),
                                  fb.data().data(),
                                  fa.size() * sizeof(float)),
                      0)
                << "slice " << s;
        }
    }
    // A one-entry cache over a retrying campaign must have cycled.
    EXPECT_GT(a.retries, 0u);

    // The capacity knob is validated.
    hifi::scope::RecoveryParams zero;
    zero.cleanCacheCapacity = 0;
    const auto err = hifi::scope::validate(zero);
    ASSERT_TRUE(err);
    EXPECT_EQ(err->code, ErrorCode::InvalidArgument);
}

// ---------------------------------------------------------------
// Typed-error sweep.
// ---------------------------------------------------------------

TEST(TypedErrors, CheckedPipelineRejectsHostileConfigsWithoutThrowing)
{
    struct Case
    {
        const char *what;
        PipelineConfig config;
        ErrorCode expected;
    };
    std::vector<Case> cases;
    {
        Case c{"unknown chip", testConfig(1), ErrorCode::NotFound};
        c.config.chipId = "ZZ99";
        cases.push_back(c);
    }
    {
        Case c{"zero pairs", testConfig(1),
               ErrorCode::InvalidArgument};
        c.config.pairs = 0;
        cases.push_back(c);
    }
    {
        Case c{"zero stacked SAs", testConfig(1),
               ErrorCode::InvalidArgument};
        c.config.stackedSas = 0;
        cases.push_back(c);
    }
    {
        Case c{"drift probability out of range", testConfig(1),
               ErrorCode::InvalidArgument};
        c.config.driftProbability = 1.5;
        cases.push_back(c);
    }
    {
        Case c{"detector override out of range", testConfig(1),
               ErrorCode::InvalidArgument};
        c.config.detectorOverride = 7;
        cases.push_back(c);
    }
    {
        Case c{"corner out of range", testConfig(1),
               ErrorCode::InvalidArgument};
        c.config.corner = static_cast<hifi::models::ProcessCorner>(99);
        cases.push_back(c);
    }
    {
        Case c{"infeasible defect mix", testConfig(1),
               ErrorCode::FailedPrecondition};
        c.config.pairs = 1;
        c.config.defects.bitlineShorts = 5;
        cases.push_back(c);
    }
    {
        Case c{"zero clean-cache capacity", testConfig(1),
               ErrorCode::InvalidArgument};
        c.config.recovery.cleanCacheCapacity = 0;
        cases.push_back(c);
    }
    for (const auto &c : cases) {
        std::optional<hifi::common::Result<hifi::core::PipelineReport>>
            r;
        EXPECT_NO_THROW(
            r.emplace(hifi::core::runPipelineChecked(c.config)))
            << c.what;
        ASSERT_TRUE(r.has_value()) << c.what;
        ASSERT_FALSE(r->ok()) << c.what;
        EXPECT_EQ(r->error().code, c.expected) << c.what;
    }
}

TEST(TypedErrors, TransiencyClassification)
{
    using hifi::common::isTransient;
    EXPECT_TRUE(isTransient(ErrorCode::Internal));
    EXPECT_TRUE(isTransient(ErrorCode::DataLoss));
    EXPECT_TRUE(isTransient(ErrorCode::DeadlineExceeded));
    EXPECT_FALSE(isTransient(ErrorCode::InvalidArgument));
    EXPECT_FALSE(isTransient(ErrorCode::NotFound));
    EXPECT_FALSE(isTransient(ErrorCode::FailedPrecondition));
    EXPECT_FALSE(isTransient(ErrorCode::ResourceExhausted));
    EXPECT_FALSE(isTransient(ErrorCode::Cancelled));
}
