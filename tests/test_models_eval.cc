/**
 * @file
 * Tests for the chip datasets and the evaluation framework.  These lock
 * the calibration: every aggregate the paper reports must reproduce
 * within tight tolerances.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>

#include "eval/bitline_ext.hh"
#include "eval/model_accuracy.hh"
#include "eval/overheads.hh"
#include "eval/recommendations.hh"
#include "eval/sensitivity.hh"
#include "models/export.hh"
#include "models/process.hh"
#include "models/chip_data.hh"
#include "models/papers.hh"
#include "models/public_models.hh"

namespace
{

using namespace hifi;
using models::ChipSpec;
using models::Role;
using models::Topology;

TEST(ChipData, TableOneRoster)
{
    const auto &chips = models::allChips();
    ASSERT_EQ(chips.size(), 6u);
    EXPECT_EQ(chips[0].id, "A4");
    EXPECT_EQ(chips[5].id, "C5");

    // Table I: die sizes and pixel resolutions.
    EXPECT_DOUBLE_EQ(models::chip("A4").dieAreaMm2, 34.0);
    EXPECT_DOUBLE_EQ(models::chip("B4").dieAreaMm2, 48.0);
    EXPECT_DOUBLE_EQ(models::chip("C4").dieAreaMm2, 42.0);
    EXPECT_DOUBLE_EQ(models::chip("A5").dieAreaMm2, 75.0);
    EXPECT_DOUBLE_EQ(models::chip("B5").dieAreaMm2, 68.0);
    EXPECT_DOUBLE_EQ(models::chip("C5").dieAreaMm2, 66.0);
    EXPECT_DOUBLE_EQ(models::chip("B4").pixelResNm, 3.4);
    EXPECT_EQ(models::chip("A4").detector, models::Detector::Se);
    EXPECT_EQ(models::chip("C5").detector, models::Detector::Bse);
    EXPECT_THROW(models::chip("Z9"), std::out_of_range);
}

TEST(ChipData, TopologyAssignment)
{
    // Section V-A: OCSA on A4, A5, B5; classic on B4, C4, C5.
    EXPECT_EQ(models::chip("A4").topology, Topology::Ocsa);
    EXPECT_EQ(models::chip("A5").topology, Topology::Ocsa);
    EXPECT_EQ(models::chip("B5").topology, Topology::Ocsa);
    EXPECT_EQ(models::chip("B4").topology, Topology::Classic);
    EXPECT_EQ(models::chip("C4").topology, Topology::Classic);
    EXPECT_EQ(models::chip("C5").topology, Topology::Classic);
}

TEST(ChipData, OcsaChipsHaveIsoOcAndNoEqualizer)
{
    for (const auto &c : models::allChips()) {
        const bool ocsa = c.topology == Topology::Ocsa;
        EXPECT_EQ(static_cast<bool>(c.role(Role::Iso)), ocsa) << c.id;
        EXPECT_EQ(static_cast<bool>(c.role(Role::Oc)), ocsa) << c.id;
        EXPECT_EQ(static_cast<bool>(c.role(Role::Equalizer)), !ocsa)
            << c.id;
        // Every chip has the latch, precharge, column and LSA parts.
        EXPECT_TRUE(c.role(Role::Nsa)) << c.id;
        EXPECT_TRUE(c.role(Role::Psa)) << c.id;
        EXPECT_TRUE(c.role(Role::Precharge)) << c.id;
        EXPECT_TRUE(c.role(Role::Column)) << c.id;
        EXPECT_TRUE(c.role(Role::Lsa)) << c.id;
    }
}

TEST(ChipData, PsaNarrowerThanNsa)
{
    // Section V-A step (viii): PMOS latch devices are narrower.
    for (const auto &c : models::allChips())
        EXPECT_LT(c.role(Role::Psa)->w, c.role(Role::Nsa)->w) << c.id;
}

TEST(ChipData, ArrayFractionsMatchPaperAggregates)
{
    // DDR4 (MAT+SA)/die averages ~0.704 (CoolDRAM 175x anchor) and
    // MAT/die ~0.57; DDR5 averages ~0.676.
    double f4 = 0.0, f5 = 0.0, m4 = 0.0;
    for (const auto *c : models::chipsOfGeneration(4)) {
        f4 += c->arrayFraction();
        m4 += c->matFraction();
    }
    for (const auto *c : models::chipsOfGeneration(5))
        f5 += c->arrayFraction();
    EXPECT_NEAR(f4 / 3.0, 0.704, 0.004);
    EXPECT_NEAR(m4 / 3.0, 0.570, 0.007);
    EXPECT_NEAR(f5 / 3.0, 0.676, 0.004);
}

TEST(ChipData, TransitionAveragesMatchPaper)
{
    // Section V-C: 318 nm (DDR4) and 275 nm (DDR5) on average.
    double t4 = 0.0, t5 = 0.0;
    for (const auto *c : models::chipsOfGeneration(4))
        t4 += c->transitionNm;
    for (const auto *c : models::chipsOfGeneration(5))
        t5 += c->transitionNm;
    EXPECT_NEAR(t4 / 3.0, 318.0, 1.0);
    EXPECT_NEAR(t5 / 3.0, 275.0, 1.0);
}

TEST(ChipData, RowDriversNarrowerThanSaRegion)
{
    // Fig. 6: W1 (row drivers) < W2 (SA region) on every chip.
    for (const auto &c : models::allChips())
        EXPECT_LT(c.rowDriverWidthNm, c.saHeightNm) << c.id;
}

TEST(ChipData, EffectiveSizesExceedDrawn)
{
    for (const auto &c : models::allChips()) {
        EXPECT_GT(c.effective(Role::Nsa, false), c.role(Role::Nsa)->w);
        EXPECT_GT(c.effective(Role::Nsa, true), c.role(Role::Nsa)->l);
    }
    EXPECT_THROW(models::chip("B4").effective(Role::Iso, true),
                 std::invalid_argument);
    // Chips without ISO scale from the precharge dimensions.
    EXPECT_GT(models::chip("B4").isoEffectiveLength(), 0.0);
}

TEST(ChipData, SmallestWireHeightIsB5)
{
    // Section IV-C: wire heights down to 30 nm on B5.
    EXPECT_DOUBLE_EQ(models::chip("B5").wireHeightNm, 30.0);
    for (const auto &c : models::allChips())
        EXPECT_GE(c.wireHeightNm, 30.0) << c.id;
}

TEST(PublicModels, RosterAndShape)
{
    const auto &crow = models::crowModel();
    const auto &rem = models::remModel();
    EXPECT_EQ(crow.year, 2019);
    EXPECT_EQ(rem.year, 2022);
    // CROW does not include column transistors; REM does.
    EXPECT_FALSE(crow.role(Role::Column));
    EXPECT_TRUE(rem.role(Role::Column));
    // Neither includes OCSA elements.
    EXPECT_FALSE(crow.role(Role::Iso));
    EXPECT_FALSE(rem.role(Role::Iso));
    EXPECT_FALSE(rem.role(Role::Oc));
}

// ---- Fig. 12 calibration locks -------------------------------------

TEST(ModelAccuracy, CrowDdr4MatchesPaper)
{
    const auto acc = eval::evaluateModel(models::crowModel(), 4);
    EXPECT_NEAR(acc.avgWl, 2.36, 0.05);   // 236% average W/L
    EXPECT_NEAR(acc.maxWl, 5.62, 0.10);   // 562% max
    EXPECT_EQ(acc.maxWlAt, "C4.precharge");
    EXPECT_NEAR(acc.avgW, 2.71, 0.12);    // 271% average width
    EXPECT_NEAR(acc.maxW, 9.38, 0.05);    // 938% max ("9x")
    EXPECT_EQ(acc.maxWAt, "C4.precharge");
}

TEST(ModelAccuracy, RemDdr4MatchesPaper)
{
    const auto acc = eval::evaluateModel(models::remModel(), 4);
    EXPECT_NEAR(acc.avgL, 0.31, 0.03);    // 31% average length
    EXPECT_NEAR(acc.maxL, 1.01, 0.03);    // 101% max
    EXPECT_EQ(acc.maxLAt, "C4.equalizer");
}

TEST(ModelAccuracy, CrowWorseThanRemOnWl)
{
    // "On average, CROW has the higher inaccuracy between the two."
    const auto crow = eval::evaluateModel(models::crowModel(), 4);
    const auto rem = eval::evaluateModel(models::remModel(), 4);
    EXPECT_GT(crow.avgWl, rem.avgWl);
    EXPECT_GT(crow.avgW, rem.avgW);   // CROW most inaccurate widths
    EXPECT_GT(rem.avgL, crow.avgL);   // REM most inaccurate lengths
}

TEST(ModelAccuracy, Ddr5FollowsSimilarTrend)
{
    const auto crow = eval::evaluateModel(models::crowModel(), 5);
    const auto rem = eval::evaluateModel(models::remModel(), 5);
    EXPECT_GT(crow.avgWl, rem.avgWl);
    EXPECT_GT(crow.avgWl, 2.0);
}

TEST(ModelAccuracy, Fig11SeriesShape)
{
    const auto series = eval::fig11Series();
    ASSERT_EQ(series.size(), 7u); // six chips + REM
    EXPECT_EQ(series.back().label, "REM");
    for (const auto &row : series) {
        EXPECT_GT(row.nsaW, row.psaW) << row.label;
        EXPECT_GT(row.nsaW, 0.0);
        EXPECT_GT(row.psaL, 0.0);
    }
    // REM (older technology) uses wider/longer devices than any chip.
    for (size_t i = 0; i + 1 < series.size(); ++i) {
        EXPECT_GE(series.back().nsaW, series[i].nsaW);
        EXPECT_GE(series.back().nsaL, series[i].nsaL);
    }
}

// ---- Table II calibration locks ------------------------------------

TEST(Papers, RosterMatchesTableII)
{
    const auto &papers = models::allPapers();
    ASSERT_EQ(papers.size(), 13u);
    EXPECT_EQ(papers.front().name, "CHARM");
    EXPECT_EQ(papers.back().name, "CoolDRAM");
    EXPECT_EQ(models::inaccuracyLabel(models::paper("CoolDRAM")),
              "I1,2,3,5");
    EXPECT_EQ(models::inaccuracyLabel(models::paper("PF-DRAM")), "I5");
    EXPECT_EQ(models::inaccuracyLabel(models::paper("AMBIT")),
              "I1,2,5");
    // CoolDRAM's 0.4% original estimate is stated in the paper.
    EXPECT_DOUBLE_EQ(models::paper("CoolDRAM").originalEstimate, 0.004);
}

struct TableTwoCase
{
    const char *name;
    double error; // NaN = N/A
    double port;
    double tolErr;
    double tolPort;
};

class TableTwoTest : public ::testing::TestWithParam<TableTwoCase>
{
};

TEST_P(TableTwoTest, OverheadErrorAndPortingCost)
{
    const auto &c = GetParam();
    const auto audit = eval::auditPaper(models::paper(c.name));
    if (std::isnan(c.error)) {
        EXPECT_TRUE(std::isnan(audit.overheadError));
    } else {
        EXPECT_NEAR(audit.overheadError, c.error, c.tolErr) << c.name;
    }
    EXPECT_NEAR(audit.portingCost, c.port, c.tolPort) << c.name;
}

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

INSTANTIATE_TEST_SUITE_P(
    PaperRows, TableTwoTest,
    ::testing::Values(
        TableTwoCase{"CHARM", kNaN, 0.29, 0, 0.03},
        TableTwoCase{"R.B. DEC.", kNaN, -0.25, 0, 0.03},
        TableTwoCase{"AMBIT", kNaN, 68.0, 0, 1.0},
        TableTwoCase{"DrACC", 35.0, 34.0, 0.5, 1.0},
        TableTwoCase{"Graphide", 54.0, 52.0, 0.5, 1.0},
        TableTwoCase{"In-Mem.Lowcost.", 70.0, 67.0, 0.5, 1.0},
        TableTwoCase{"ELP2IM", kNaN, 90.0, 0, 1.0},
        TableTwoCase{"CLR-DRAM", 22.0, 21.0, 0.5, 0.5},
        TableTwoCase{"SIMDRAM", 70.0, 67.0, 0.5, 1.0},
        TableTwoCase{"Nov. DRAM", 0.49, 0.001, 0.20, 0.05},
        TableTwoCase{"PF-DRAM", 0.35, -0.01, 0.06, 0.05},
        TableTwoCase{"REGA", 8.0, 7.0, 0.3, 0.6},
        TableTwoCase{"CoolDRAM", 175.0, 168.0, 1.0, 1.0}),
    [](const auto &info) {
        std::string n = info.param.name;
        for (auto &ch : n)
            if (!isalnum(static_cast<unsigned char>(ch)))
                ch = '_';
        return n;
    });

TEST(Overheads, CoolDramIsTheWorstCase)
{
    // "up to 175x" is the maximum across all papers.
    double worst = 0.0;
    std::string worst_name;
    for (const auto &audit : eval::auditAllPapers()) {
        if (!std::isnan(audit.overheadError) &&
            audit.overheadError > worst) {
            worst = audit.overheadError;
            worst_name = audit.paper->name;
        }
    }
    EXPECT_EQ(worst_name, "CoolDRAM");
    EXPECT_GT(worst, 170.0);
}

TEST(Overheads, I1PapersNeed57PercentForMatExtension)
{
    EXPECT_NEAR(eval::i1MatExtensionOverhead(), 0.57, 0.007);
}

TEST(Overheads, ObservationOneCharmVendorVariation)
{
    // Observation 1: CHARM varies ~0.45x from vendor A to C on DDR5.
    const auto audit = eval::auditPaper(models::paper("CHARM"));
    const double variation =
        audit.perChip.at("A5") - audit.perChip.at("C5");
    EXPECT_NEAR(variation, 0.45, 0.03);
}

TEST(Overheads, ObservationTwoRbdecBiggestDropOnA5)
{
    // Observation 2: the biggest porting reduction is RBDEC on A5
    // (~-0.47x); DDR5 porting is cheaper than DDR4 for RBDEC.
    const auto audit = eval::auditPaper(models::paper("R.B. DEC."));
    EXPECT_NEAR(audit.perChip.at("A5"), -0.47, 0.04);
    for (const auto &[id, v] : audit.perChip)
        EXPECT_GE(v, audit.perChip.at("A5")) << id;
}

TEST(Overheads, RegaVendorASpecialCase)
{
    // Appendix A: on vendor A, REGA needs only the transistor-level
    // extension (M2 slack); elsewhere a third of the array.
    const auto &rega = models::paper("REGA");
    const double a4 = eval::overheadFraction(rega, models::chip("A4"));
    const double b4 = eval::overheadFraction(rega, models::chip("B4"));
    EXPECT_LT(a4, 0.05);
    EXPECT_NEAR(b4, models::chip("B4").arrayFraction() / 3.0, 1e-12);
}

TEST(Overheads, DoubleArrayPapersCostTheArrayFraction)
{
    const auto &ambit = models::paper("AMBIT");
    for (const auto &chip : models::allChips()) {
        EXPECT_NEAR(eval::overheadFraction(ambit, chip),
                    chip.arrayFraction(), 1e-12);
    }
}

TEST(Overheads, Fig14FilterDropsAlwaysOver10x)
{
    const auto under = eval::auditUnderLimit(10.0);
    // CHARM, RBDEC, NovDRAM, PF-DRAM, REGA qualify (REGA via A4/A5).
    ASSERT_EQ(under.size(), 5u);
    for (const auto &audit : under) {
        const std::string &n = audit.paper->name;
        EXPECT_TRUE(n == "CHARM" || n == "R.B. DEC." ||
                    n == "Nov. DRAM" || n == "PF-DRAM" || n == "REGA")
            << n;
    }
}

TEST(Overheads, FormulaDescriptionsCoverAllPapers)
{
    for (const auto &paper : models::allPapers()) {
        const auto desc = eval::overheadFormulaDescription(paper);
        EXPECT_NE(desc.find("P_extra"), std::string::npos)
            << paper.name;
    }
    // REGA switches formula on vendor A.
    const auto &rega = models::paper("REGA");
    EXPECT_NE(eval::overheadFormulaDescription(rega, false),
              eval::overheadFormulaDescription(rega, true));
    EXPECT_NE(eval::overheadFormulaDescription(rega, true)
                  .find("M2 slack"),
              std::string::npos);
}

TEST(Overheads, MatSplitOverheadPerGeneration)
{
    // Section V-C: splitting a MAT costs ~1.6% (DDR4) / ~1.1% (DDR5)
    // of the MAT; our geometry reproduces the order and the DDR4 >
    // DDR5 relation.
    double s4 = 0.0, s5 = 0.0;
    for (const auto *c : models::chipsOfGeneration(4))
        s4 += eval::matSplitOverhead(*c);
    for (const auto *c : models::chipsOfGeneration(5))
        s5 += eval::matSplitOverhead(*c);
    s4 /= 3.0;
    s5 /= 3.0;
    EXPECT_GT(s4, s5);
    EXPECT_GT(s4, 0.010);
    EXPECT_LT(s4, 0.022);
    EXPECT_GT(s5, 0.008);
    EXPECT_LT(s5, 0.018);
}

TEST(Process, DerivedNumbersArePhysical)
{
    for (const auto &chip : models::allChips()) {
        const auto info = models::processInfo(chip);
        // Feature sizes in the 1x-nm to 3x-nm range.
        EXPECT_GE(info.featureNm, 14.0) << chip.id;
        EXPECT_LE(info.featureNm, 40.0) << chip.id;
        // Paper: MATs contain "between half to a million capacitors".
        EXPECT_GE(info.cellsPerMat, 0.5e6) << chip.id;
        EXPECT_LE(info.cellsPerMat, 1.0e6) << chip.id;
        // Gross cell sites vs nominal capacity: bounded slack
        // (redundancy, on-die ECC, dummy structures, calibration).
        EXPECT_GE(info.capacityRatio, 0.8) << chip.id;
        EXPECT_LE(info.capacityRatio, 1.6) << chip.id;
    }
    // DDR5 chips are denser than their DDR4 vendor siblings.
    EXPECT_LT(models::processInfo(models::chip("B5")).featureNm,
              models::processInfo(models::chip("B4")).featureNm);
}

TEST(DatasetExport, WritesAllFourCsvFiles)
{
    const auto files = models::exportDataset("/tmp");
    auto count_lines = [](const std::string &path) {
        std::ifstream in(path);
        EXPECT_TRUE(in.good()) << path;
        size_t n = 0;
        std::string line;
        while (std::getline(in, line))
            ++n;
        return n;
    };
    EXPECT_EQ(count_lines(files.chips), 7u);       // header + 6
    EXPECT_EQ(count_lines(files.transistors), 40u); // header + 39
    EXPECT_EQ(count_lines(files.publicModels), 10u); // 4 + 5 + header
    EXPECT_EQ(count_lines(files.papers), 14u);     // header + 13
    EXPECT_THROW(models::exportDataset("/nonexistent"),
                 std::runtime_error);
}

TEST(Sensitivity, ConclusionsAreRobustToGeometryError)
{
    const auto ranges = eval::overheadSensitivity(0.05);
    ASSERT_GE(ranges.size(), 5u);
    for (const auto &r : ranges) {
        EXPECT_GE(r.high, r.low) << r.quantity;
        // +-5% geometry moves the headline numbers by under 15%.
        EXPECT_LT(std::abs(r.relativeSpan()), 0.15) << r.quantity;
        if (r.quantity.find("CoolDRAM") != std::string::npos) {
            // The 175x conclusion stays far above 100x at both ends.
            EXPECT_GT(r.low, 100.0);
        }
    }
}

// ---- Appendix A -----------------------------------------------------

TEST(BitlineExt, EqOneEvaluatesToOneThird)
{
    EXPECT_NEAR(eval::bitlineDoublingExtension(), 1.0 / 3.0, 1e-12);
    EXPECT_THROW(eval::bitlineDoublingExtension(0.0, 1.0),
                 std::invalid_argument);
}

TEST(BitlineExt, B5ChipOverheadNear21Percent)
{
    const double overhead =
        eval::bitlineDoublingChipOverhead(models::chip("B5"));
    EXPECT_NEAR(overhead, 0.21, 0.02);
}

TEST(BitlineExt, M2ShrinkIsQuarterOnVendorA)
{
    EXPECT_NEAR(eval::m2ShrinkFactorForRega(models::chip("A4")), 0.25,
                1e-12);
    EXPECT_NEAR(eval::m2ShrinkFactorForRega(models::chip("A5")), 0.25,
                1e-12);
    EXPECT_THROW(eval::m2ShrinkFactorForRega(models::chip("B5")),
                 std::invalid_argument);
}

} // namespace

// ---- Section VI-E: recommendations ------------------------------------

namespace recommendations_tests
{

using hifi::eval::Proposal;

TEST(Recommendations, FourRecommendationsExist)
{
    const auto &recs = hifi::eval::recommendations();
    ASSERT_EQ(recs.size(), 4u);
    EXPECT_EQ(recs[0].id, "R1");
    EXPECT_EQ(recs[3].id, "R4");
    for (const auto &r : recs) {
        EXPECT_FALSE(r.title.empty());
        EXPECT_FALSE(r.rationale.empty());
    }
}

TEST(Recommendations, CleanProposalPassesEverywhere)
{
    Proposal clean;
    clean.placesElementsAfterColumns = true;
    clean.accountsForBothStackedSas = true;
    clean.modelsOcsa = true;
    for (const auto &chip : hifi::models::allChips())
        EXPECT_TRUE(hifi::eval::checkProposal(clean, chip).empty())
            << chip.id;
}

TEST(Recommendations, DccStyleProposalTripsI1)
{
    Proposal dcc;
    dcc.name = "AMBIT-style DCC";
    dcc.extraBitlinesPerExisting = 1;
    dcc.placesElementsAfterColumns = true;
    dcc.accountsForBothStackedSas = true;
    dcc.modelsOcsa = true;
    const auto findings =
        hifi::eval::checkProposal(dcc, hifi::models::chip("C4"));
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].inaccuracy, "I1");
    EXPECT_EQ(findings[0].recommendation, "R1");
}

TEST(Recommendations, ClassicOnlyAssumptionTripsI5OnOcsaChips)
{
    Proposal p;
    p.placesElementsAfterColumns = true;
    p.accountsForBothStackedSas = true;
    p.modelsOcsa = false;
    for (const char *id : {"A4", "A5", "B5"}) {
        const auto findings =
            hifi::eval::checkProposal(p, hifi::models::chip(id));
        ASSERT_EQ(findings.size(), 1u) << id;
        EXPECT_EQ(findings[0].inaccuracy, "I5");
    }
    // Classic chips are unaffected by I5.
    EXPECT_TRUE(
        hifi::eval::checkProposal(p, hifi::models::chip("C4")).empty());
}

TEST(Recommendations, IsolationAssumptionDependsOnTopology)
{
    Proposal p;
    p.assumesIsolationPresent = true;
    p.placesElementsAfterColumns = true;
    p.accountsForBothStackedSas = true;
    p.modelsOcsa = true;
    const auto classic =
        hifi::eval::checkProposal(p, hifi::models::chip("B4"));
    ASSERT_EQ(classic.size(), 1u);
    EXPECT_EQ(classic[0].inaccuracy, "I3"); // nothing to reuse
    const auto ocsa =
        hifi::eval::checkProposal(p, hifi::models::chip("B5"));
    ASSERT_EQ(ocsa.size(), 1u);
    EXPECT_EQ(ocsa[0].recommendation, "R4"); // different ISO semantics
}

TEST(Recommendations, ExtraWiresOkOnlyOnVendorA)
{
    Proposal p;
    p.name = "REGA-style wiring";
    p.extraWires = 1;
    p.placesElementsAfterColumns = true;
    p.accountsForBothStackedSas = true;
    p.modelsOcsa = true;
    EXPECT_TRUE(
        hifi::eval::checkProposal(p, hifi::models::chip("A4")).empty());
    EXPECT_FALSE(
        hifi::eval::checkProposal(p, hifi::models::chip("B4")).empty());
}

} // namespace recommendations_tests
