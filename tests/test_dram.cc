/**
 * @file
 * Tests for the command-level DRAM model: simulation-derived timings,
 * the bank state machine, data storage, the trace runner, and the
 * out-of-spec two-row activation semantics per topology.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "dram/device.hh"

namespace
{

using namespace hifi;
using dram::Bank;
using dram::BankConfig;
using dram::Timings;

BankConfig
testConfig(models::Topology topology = models::Topology::Classic)
{
    BankConfig config;
    config.rows = 16;
    config.columns = 8;
    config.topology = topology;
    config.timings = {10.0, 30.0, 10.0, 4.0, 8.0};
    return config;
}

TEST(Timings, DerivedFromSimulationPerTopology)
{
    const Timings classic =
        Timings::forTopology(circuit::SaTopology::Classic);
    const Timings ocsa =
        Timings::forTopology(circuit::SaTopology::OffsetCancellation);

    // OCSA's extra phases lengthen activation (Section VI-D).
    EXPECT_GT(ocsa.tRcd, classic.tRcd);
    EXPECT_GT(ocsa.tRas, classic.tRas);
    EXPECT_GT(classic.tRcd, 3.0);
    EXPECT_LT(classic.tRcd, 20.0);
    EXPECT_GT(classic.tRas, classic.tRcd);
    EXPECT_GT(classic.tRp, 0.5);
}

TEST(Timings, GuardBandScales)
{
    circuit::SaParams p;
    const Timings tight = Timings::fromSimulation(p, 1.0);
    const Timings guarded = Timings::fromSimulation(p, 1.5);
    EXPECT_NEAR(guarded.tRcd, 1.5 * tight.tRcd, 1e-9);
    EXPECT_THROW(Timings::fromSimulation(p, 0.5),
                 std::invalid_argument);
}

TEST(BankConfigFromChip, UsesTopologyAndGeometry)
{
    const auto ocsa = BankConfig::fromChip(models::chip("B5"));
    const auto classic = BankConfig::fromChip(models::chip("C5"));
    EXPECT_EQ(ocsa.topology, models::Topology::Ocsa);
    EXPECT_EQ(classic.topology, models::Topology::Classic);
    EXPECT_GT(ocsa.timings.tRcd, classic.timings.tRcd);
    EXPECT_GT(ocsa.rows, 256u);
    EXPECT_LT(ocsa.rows, 2048u);
}

TEST(Bank, HappyPathActReadWritePre)
{
    Bank bank(testConfig());
    EXPECT_TRUE(bank.activate(0.0, 3).accepted);
    EXPECT_EQ(bank.openRow(), 3u);

    auto wr = bank.write(15.0, 2, 0xAB);
    EXPECT_TRUE(wr.accepted);
    auto rd = bank.read(20.0, 2);
    ASSERT_TRUE(rd.accepted);
    EXPECT_EQ(*rd.data, 0xAB);

    EXPECT_TRUE(bank.precharge(40.0).accepted);
    EXPECT_FALSE(bank.openRow());
    EXPECT_EQ(bank.violations(), 0u);
}

TEST(Bank, DataPersistsAcrossActivations)
{
    Bank bank(testConfig());
    bank.activate(0.0, 5);
    bank.write(15.0, 0, 42);
    bank.precharge(40.0);
    bank.activate(60.0, 1);
    bank.precharge(100.0);
    bank.activate(120.0, 5);
    auto rd = bank.read(135.0, 0);
    ASSERT_TRUE(rd.accepted);
    EXPECT_EQ(*rd.data, 42);
}

TEST(Bank, TimingViolationsRejected)
{
    Bank bank(testConfig());
    bank.activate(0.0, 0);
    // tRCD = 10: read at 5 ns is too early.
    EXPECT_FALSE(bank.read(5.0, 0).accepted);
    // tRAS = 30: precharge at 20 ns is too early.
    EXPECT_FALSE(bank.precharge(20.0).accepted);
    // Valid read, then tCCD violation.
    EXPECT_TRUE(bank.read(12.0, 0).accepted);
    EXPECT_FALSE(bank.read(13.0, 1).accepted);
    // tWR: write at 31, precharge at 35 violates tWR = 8.
    EXPECT_TRUE(bank.write(31.0, 0, 1).accepted);
    EXPECT_FALSE(bank.precharge(35.0).accepted);
    EXPECT_TRUE(bank.precharge(40.0).accepted);
    // tRP = 10: immediate re-activation rejected.
    EXPECT_FALSE(bank.activate(45.0, 1).accepted);
    EXPECT_TRUE(bank.activate(51.0, 1).accepted);
    EXPECT_EQ(bank.violations(), 5u);
}

TEST(Bank, StateViolationsRejected)
{
    Bank bank(testConfig());
    EXPECT_FALSE(bank.read(100.0, 0).accepted);  // no open row
    EXPECT_FALSE(bank.precharge(100.0).accepted);
    EXPECT_TRUE(bank.activate(100.0, 0).accepted);
    EXPECT_FALSE(bank.activate(200.0, 1).accepted); // already open
    EXPECT_FALSE(bank.read(120.0, 99).accepted);    // bad column
    EXPECT_FALSE(bank.activate(300.0, 99).accepted);
}

TEST(Bank, TwoRowActivationAgreeingBits)
{
    Bank bank(testConfig());
    bank.cell(1, 0) = 0b11001100;
    bank.cell(2, 0) = 0b11001100;
    EXPECT_TRUE(bank.activateTwoRows(0.0, 1, 2).accepted);
    EXPECT_EQ(bank.cell(1, 0), 0b11001100);
    EXPECT_EQ(bank.cell(2, 0), 0b11001100);
}

TEST(Bank, TwoRowConflictsClassicVsOcsa)
{
    // Conflicting bits: classic keeps row A's value (the mismatch
    // lottery's deterministic stand-in); OCSA biases toward '1'.
    Bank classic(testConfig(models::Topology::Classic));
    classic.cell(1, 0) = 0b11110000;
    classic.cell(2, 0) = 0b10101010;
    classic.activateTwoRows(0.0, 1, 2);
    // agree mask: ~(a^b) = 0b10100101 -> agreed bits keep a; the
    // rest resolve to a as well on classic.
    EXPECT_EQ(classic.cell(1, 0), 0b11110000);

    Bank ocsa(testConfig(models::Topology::Ocsa));
    ocsa.cell(1, 0) = 0b11110000;
    ocsa.cell(2, 0) = 0b10101010;
    ocsa.activateTwoRows(0.0, 1, 2);
    // Conflicts (bits where a != b) become 1: 0b11110000 | 0b01011010.
    EXPECT_EQ(ocsa.cell(1, 0), 0b11111010);
    EXPECT_EQ(ocsa.cell(2, 0), 0b11111010);
}

TEST(Bank, TwoRowRejectsBadPairs)
{
    Bank bank(testConfig());
    EXPECT_FALSE(bank.activateTwoRows(0.0, 1, 1).accepted);
    EXPECT_FALSE(bank.activateTwoRows(0.0, 1, 99).accepted);
    bank.activate(0.0, 0);
    EXPECT_FALSE(bank.activateTwoRows(10.0, 1, 2).accepted);
}

TEST(Bank, RetentionDecaysUnrefreshedRows)
{
    auto config = testConfig();
    config.retentionNs = 1000.0; // 1 us retention for the test
    Bank bank(config);
    bank.activate(0.0, 3);
    bank.write(15.0, 0, 0xEE);
    bank.precharge(40.0);

    // Within retention: data survives.
    bank.activate(60.0, 3);
    EXPECT_EQ(*bank.read(75.0, 0).data, 0xEE);
    bank.precharge(100.0);

    // Beyond retention: the row decays to zeros.
    bank.activate(5000.0, 3);
    EXPECT_EQ(*bank.read(5015.0, 0).data, 0x00);
}

TEST(Bank, RefreshPreservesDataAcrossRetentionWindows)
{
    auto config = testConfig();
    config.retentionNs = 1000.0;
    config.rowsPerRefresh = config.rows; // refresh-all for simplicity
    Bank bank(config);
    bank.activate(0.0, 3);
    bank.write(15.0, 0, 0x5A);
    bank.precharge(40.0);

    // Refresh every 800 ns: data must survive 5 windows.
    for (int i = 1; i <= 5; ++i)
        EXPECT_TRUE(bank.refresh(40.0 + 800.0 * i).accepted);

    bank.activate(4200.0, 3);
    EXPECT_EQ(*bank.read(4215.0, 0).data, 0x5A);
}

TEST(Bank, RefreshRequiresPrechargedBank)
{
    Bank bank(testConfig());
    bank.activate(0.0, 0);
    EXPECT_FALSE(bank.refresh(50.0).accepted);
    bank.precharge(40.0);
    EXPECT_TRUE(bank.refresh(60.0).accepted);
}

TEST(Bank, DecayedRowsCountGrowsOverTime)
{
    auto config = testConfig();
    config.retentionNs = 100.0;
    Bank bank(config);
    EXPECT_EQ(bank.decayedRows(50.0), 0u);
    EXPECT_EQ(bank.decayedRows(200.0), config.rows);
    bank.activate(200.0, 5);
    bank.precharge(240.0);
    EXPECT_EQ(bank.decayedRows(300.0), config.rows - 1);
}

TEST(Bank, DisturbanceFlipsVictimBitsAfterThreshold)
{
    auto config = testConfig();
    config.disturbanceThreshold = 5;
    Bank bank(config);
    bank.cell(4, 0) = 0xFF; // victim above the aggressor
    bank.cell(6, 0) = 0xFF; // victim below

    // Hammer row 5.
    double t = 0.0;
    for (int i = 0; i < 8; ++i) {
        EXPECT_TRUE(bank.activate(t, 5).accepted);
        EXPECT_TRUE(bank.precharge(t + 31.0).accepted);
        t += 50.0;
    }
    EXPECT_EQ(bank.exposure(4), 8u);
    EXPECT_EQ(bank.cell(4, 0), 0xFE); // weak bit leaked
    EXPECT_EQ(bank.cell(6, 0), 0xFE);
    // Non-adjacent rows untouched.
    bank.cell(8, 0) = 0xFF;
    EXPECT_EQ(bank.cell(8, 0), 0xFF);
}

TEST(Bank, RefreshResetsDisturbanceExposure)
{
    auto config = testConfig();
    config.disturbanceThreshold = 5;
    config.rowsPerRefresh = config.rows;
    Bank bank(config);
    bank.cell(4, 0) = 0xFF;

    double t = 0.0;
    for (int i = 0; i < 4; ++i) { // below threshold
        bank.activate(t, 5);
        bank.precharge(t + 31.0);
        t += 50.0;
    }
    EXPECT_TRUE(bank.refresh(t).accepted); // TRR-style rescue
    EXPECT_EQ(bank.exposure(4), 0u);

    for (int i = 0; i < 4; ++i) { // below threshold again
        bank.activate(t + 20.0, 5);
        bank.precharge(t + 51.0);
        t += 50.0;
    }
    EXPECT_EQ(bank.cell(4, 0), 0xFF); // survived 8 total activations
}

TEST(Bank, DisturbanceDisabledByDefault)
{
    Bank bank(testConfig());
    bank.cell(4, 0) = 0xFF;
    double t = 0.0;
    for (int i = 0; i < 50; ++i) {
        bank.activate(t, 5);
        bank.precharge(t + 31.0);
        t += 50.0;
    }
    EXPECT_EQ(bank.cell(4, 0), 0xFF);
}

TEST(Device, RefInTrace)
{
    auto config = testConfig();
    config.retentionNs = 500.0;
    config.rowsPerRefresh = config.rows;
    dram::Device dev(1, config);
    dev.bank(0).cell(2, 0) = 77;
    std::istringstream trace(R"(
0    REF 0
400  REF 0
800  REF 0
1000 ACT 0 2
1012 RD  0 0
)");
    const auto stats = dev.runTrace(trace);
    EXPECT_EQ(stats.rejected, 0u);
    ASSERT_EQ(stats.readData.size(), 1u);
    EXPECT_EQ(stats.readData[0], 77);
}

TEST(Device, TraceRunnerExecutesWorkload)
{
    dram::Device dev(2, testConfig());
    std::istringstream trace(R"(
# write then read back on bank 0; bank 1 independent
0    ACT 0 3
12   WR  0 1 170
20   RD  0 1
40   PRE 0
41   ACT 1 7
55   RD  1 0
)");
    const auto stats = dev.runTrace(trace);
    EXPECT_EQ(stats.commands, 6u);
    EXPECT_EQ(stats.accepted, 6u);
    EXPECT_EQ(stats.rejected, 0u);
    ASSERT_EQ(stats.readData.size(), 2u);
    EXPECT_EQ(stats.readData[0], 170);
    EXPECT_EQ(stats.readData[1], 0);
}

TEST(Device, TraceRecordsViolations)
{
    dram::Device dev(1, testConfig());
    std::istringstream trace(R"(
0  ACT 0 0
2  RD  0 0     # tRCD violation
50 PRE 0
)");
    const auto stats = dev.runTrace(trace);
    EXPECT_EQ(stats.rejected, 1u);
    ASSERT_EQ(stats.errors.size(), 1u);
    EXPECT_NE(stats.errors[0].find("tRCD"), std::string::npos);
}

TEST(Device, TraceRejectsMalformedInput)
{
    dram::Device dev(1, testConfig());
    std::istringstream unknown("0 FOO 0\n");
    EXPECT_THROW(dev.runTrace(unknown), std::runtime_error);
    std::istringstream out_of_order("10 ACT 0 0\n5 PRE 0\n");
    EXPECT_THROW(dev.runTrace(out_of_order), std::runtime_error);
    std::istringstream bad_bank("0 ACT 7 0\n");
    EXPECT_THROW(dev.runTrace(bad_bank), std::runtime_error);
    EXPECT_THROW(dram::Device(0, testConfig()),
                 std::invalid_argument);
}

TEST(Device, OcsaBankNeedsLongerGaps)
{
    // The same aggressive trace passes on a classic-timed bank but
    // trips tRCD on the OCSA bank - the architectural consequence of
    // the reverse-engineered topology.
    const auto classic = BankConfig::fromChip(models::chip("C5"));
    const auto ocsa = BankConfig::fromChip(models::chip("B5"));

    const double t_rd = classic.timings.tRcd + 1.0;
    std::ostringstream trace;
    trace << "0 ACT 0 0\n" << t_rd << " RD 0 0\n";

    dram::Device dc(1, classic);
    std::istringstream t1(trace.str());
    EXPECT_EQ(dc.runTrace(t1).rejected, 0u);

    dram::Device doc(1, ocsa);
    std::istringstream t2(trace.str());
    EXPECT_EQ(doc.runTrace(t2).rejected, 1u);
}

} // namespace
