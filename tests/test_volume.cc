/**
 * @file
 * Tests for the out-of-core tiled volume subsystem: the
 * content-addressed TileStore (LRU, pinning, spill, corruption
 * taxonomy), TiledVolume3D vs the dense Volume3D (bitwise, at several
 * tile sizes), the streaming acquisition and post-processing chains vs
 * their in-RAM references (bitwise, at several thread counts and
 * window sizes), and the memory-budgeted pipeline end to end.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/parallel.hh"
#include "common/rng.hh"
#include "core/pipeline.hh"
#include "core/stages.hh"
#include "image/image2d.hh"
#include "image/tile_store.hh"
#include "image/tiled_volume.hh"
#include "image/volume3d.hh"
#include "scope/fib.hh"
#include "scope/postprocess.hh"

namespace
{

using namespace hifi;
using common::ErrorCode;
using image::Image2D;
using image::TiledVolume3D;
using image::TileStore;
using image::TileStoreConfig;
using image::Volume3D;

std::string
scratchDir(const std::string &name)
{
    const auto dir = std::filesystem::temp_directory_path() /
        ("hifi_test_volume_" + name);
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir.string();
}

/// Deterministic pseudo-random tile payload.
std::vector<float>
tileData(uint64_t seed, size_t n = 64)
{
    common::Rng rng(seed, 7);
    std::vector<float> v(n);
    for (float &f : v)
        f = static_cast<float>(rng.uniform());
    return v;
}

/// The drifting multi-material scene used by the robustness tests.
Volume3D
makeScene(size_t nx = 120, size_t ny = 48, size_t nz = 40)
{
    Volume3D vol(nx, ny, nz, 1.0f);
    for (size_t x = 0; x < nx; ++x) {
        const size_t s = x / 2;
        const size_t tri = s % 58 < 29 ? s % 58 : 58 - s % 58;
        const size_t bar_y = 4 + tri;
        for (size_t y = 0; y < ny; ++y)
            for (size_t z = 0; z < nz; ++z) {
                float v = 1.0f;
                if (z >= 12 && z < 16)
                    v = 0.0f;
                else if (z >= 22 && z < 26)
                    v = 2.0f;
                else if (z >= 16 && z < 22 && (y + 2000 - s) % 20 < 3)
                    v = 3.0f;
                if (z >= 30 && z < 34 && y >= bar_y && y < bar_y + 4)
                    v = 4.0f;
                vol.at(x, y, z) = v;
            }
    }
    return vol;
}

scope::FibSemParams
sceneParams()
{
    scope::FibSemParams params;
    params.sliceVoxels = 2;
    params.driftProbability = 0.3;
    params.maxDriftPx = 3;
    return params;
}

/// Faults tuned to exercise retry, interpolation and recovery.
scope::FaultParams
noisyFaults()
{
    scope::FaultParams faults;
    faults.enabled = true;
    faults.curtainingProbability = 0.12;
    faults.chargingProbability = 0.08;
    faults.focusLossProbability = 0.08;
    faults.dropoutProbability = 0.06;
    return faults;
}

bool
bitwiseEqual(const std::vector<float> &a, const std::vector<float> &b)
{
    return a.size() == b.size() &&
        std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) ==
        0;
}

bool
bitwiseEqual(const Image2D &a, const Image2D &b)
{
    return a.width() == b.width() && a.height() == b.height() &&
        bitwiseEqual(a.data(), b.data());
}

bool
bitwiseEqual(const Volume3D &a, const Volume3D &b)
{
    if (a.nx() != b.nx() || a.ny() != b.ny() || a.nz() != b.nz())
        return false;
    const size_t n = a.nx() * a.ny() * a.nz();
    return std::memcmp(a.data(), b.data(), n * sizeof(float)) == 0;
}

// ---- TileStore --------------------------------------------------------

TEST(TileStore, PutFetchRoundtripAndContentAddressing)
{
    TileStore store(TileStoreConfig{}); // memory-only, unbounded
    const auto data = tileData(1);
    const auto digest = store.put(data);
    ASSERT_TRUE(digest.ok());
    EXPECT_EQ(digest.value(), TileStore::digestOf(data));

    // Content addressing: a duplicate put changes nothing.
    const auto again = store.put(data);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again.value(), digest.value());
    EXPECT_EQ(store.residentTiles(), 1u);

    auto ref = store.fetch(digest.value());
    ASSERT_TRUE(ref.ok());
    EXPECT_TRUE(bitwiseEqual(*ref.value(), data));
    EXPECT_EQ(ref.value().digest(), digest.value());
    EXPECT_EQ(store.stats().hits, 1u);

    // Unknown digest in a memory-only store: NotFound.
    auto missing = store.fetch(digest.value() ^ 1);
    ASSERT_FALSE(missing.ok());
    EXPECT_EQ(missing.error().code, ErrorCode::NotFound);
}

TEST(TileStore, SpillsToDiskAndReloadsAfterDrop)
{
    TileStoreConfig cfg;
    cfg.dir = scratchDir("spill");
    TileStore store(std::move(cfg));

    const auto data = tileData(2);
    const auto digest = store.put(data);
    ASSERT_TRUE(digest.ok());
    EXPECT_GT(store.stats().spilledBytes, data.size() * 4);

    store.dropResident();
    EXPECT_EQ(store.residentTiles(), 0u);
    EXPECT_TRUE(store.contains(digest.value())); // on disk

    auto ref = store.fetch(digest.value());
    ASSERT_TRUE(ref.ok());
    EXPECT_TRUE(bitwiseEqual(*ref.value(), data));
    EXPECT_EQ(store.stats().misses, 1u);
}

TEST(TileStore, LruEvictsColdTilesUnderBudget)
{
    const auto data = tileData(3, 256);
    const size_t tile_bytes = data.size() * sizeof(float);

    TileStoreConfig cfg;
    cfg.dir = scratchDir("lru");
    cfg.budgetBytes = 2 * tile_bytes;
    TileStore store(std::move(cfg));

    std::vector<uint64_t> digests;
    for (uint64_t s = 0; s < 4; ++s) {
        auto d = store.put(tileData(100 + s, 256));
        ASSERT_TRUE(d.ok());
        digests.push_back(d.value());
    }
    EXPECT_LE(store.residentBytes(), store.budgetBytes());
    EXPECT_GE(store.stats().evictions, 2u);

    // Evicted tiles reload transparently from the disk tier.
    auto ref = store.fetch(digests.front());
    ASSERT_TRUE(ref.ok());
    EXPECT_TRUE(bitwiseEqual(*ref.value(), tileData(100, 256)));
}

TEST(TileStore, MemoryOnlyStoreRefusesLossyEviction)
{
    const auto data = tileData(4, 256);
    TileStoreConfig cfg; // no dir
    cfg.budgetBytes = data.size() * sizeof(float);
    TileStore store(std::move(cfg));

    ASSERT_TRUE(store.put(data).ok());
    auto second = store.put(tileData(5, 256));
    ASSERT_FALSE(second.ok());
    EXPECT_EQ(second.error().code, ErrorCode::ResourceExhausted);
    // The failed insert rolled back; the first tile survived.
    EXPECT_EQ(store.residentTiles(), 1u);
}

TEST(TileStore, PinsBlockEvictionAndOverflowIsTyped)
{
    const auto data = tileData(6, 256);
    const size_t tile_bytes = data.size() * sizeof(float);

    TileStoreConfig cfg;
    cfg.dir = scratchDir("pins");
    cfg.budgetBytes = tile_bytes; // room for exactly one pinned tile
    TileStore store(std::move(cfg));

    const auto d1 = store.put(data);
    const auto d2 = store.put(tileData(7, 256));
    ASSERT_TRUE(d1.ok());
    ASSERT_TRUE(d2.ok());

    {
        auto pinned = store.fetch(d1.value());
        ASSERT_TRUE(pinned.ok());
        EXPECT_EQ(store.pinnedBytes(), tile_bytes);

        // A second pinned tile would exceed the budget: typed error,
        // and the first pin is untouched.
        auto overflow = store.fetch(d2.value());
        ASSERT_FALSE(overflow.ok());
        EXPECT_EQ(overflow.error().code,
                  ErrorCode::ResourceExhausted);
        EXPECT_EQ(store.pinnedBytes(), tile_bytes);
    }

    // Pin released: the same fetch now succeeds.
    EXPECT_EQ(store.pinnedBytes(), 0u);
    auto ok = store.fetch(d2.value());
    EXPECT_TRUE(ok.ok());
}

TEST(TileStore, CorruptTileFilesSurfaceAsDataLoss)
{
    const std::string dir = scratchDir("corrupt");
    TileStoreConfig cfg;
    cfg.dir = dir;
    TileStore store(std::move(cfg));

    const auto data = tileData(8);
    const auto digest = store.put(data);
    ASSERT_TRUE(digest.ok());
    char name[32];
    std::snprintf(name, sizeof(name), "%016llx.tile",
                  static_cast<unsigned long long>(digest.value()));
    const std::string path = dir + "/" + name;

    // Truncated file.
    store.dropResident();
    std::filesystem::resize_file(path, 16);
    auto truncated = store.fetch(digest.value());
    ASSERT_FALSE(truncated.ok());
    EXPECT_EQ(truncated.error().code, ErrorCode::DataLoss);

    // Bit flip in the payload: header parses, content digest fails.
    ASSERT_TRUE(store.put(data).ok()); // rewrite... still dedup-skipped?
    {
        std::fstream f(path,
                       std::ios::in | std::ios::out | std::ios::binary);
        ASSERT_TRUE(f.good());
        f.seekp(24); // first payload byte (3 x u64 header)
        char byte = 0;
        f.read(&byte, 1);
        f.seekp(24);
        byte = static_cast<char>(byte ^ 0x40);
        f.write(&byte, 1);
    }
    store.dropResident();
    auto flipped = store.fetch(digest.value());
    ASSERT_FALSE(flipped.ok());
    EXPECT_EQ(flipped.error().code, ErrorCode::DataLoss);

    // A valid tile renamed to the wrong digest: header digest check.
    const auto other = store.put(tileData(9));
    ASSERT_TRUE(other.ok());
    char othername[32];
    std::snprintf(othername, sizeof(othername), "%016llx.tile",
                  static_cast<unsigned long long>(other.value()));
    std::filesystem::copy_file(
        dir + "/" + othername, path,
        std::filesystem::copy_options::overwrite_existing);
    store.dropResident();
    auto misnamed = store.fetch(digest.value());
    ASSERT_FALSE(misnamed.ok());
    EXPECT_EQ(misnamed.error().code, ErrorCode::DataLoss);
}

// ---- TiledVolume3D ----------------------------------------------------

TEST(TiledVolume, DenseRoundTripIsBitwiseAtSeveralTileSizes)
{
    // Dims deliberately not multiples of any tile edge.
    Volume3D dense(37, 23, 11);
    common::Rng rng(11, 0);
    for (size_t i = 0; i < 37 * 23 * 11; ++i)
        dense.mutableData()[i] = static_cast<float>(rng.uniform());

    for (const size_t edge : {8u, 16u, 64u}) {
        TileStore store(TileStoreConfig{});
        auto tiled = TiledVolume3D::fromDense(dense, store, edge);
        ASSERT_TRUE(tiled.ok()) << "edge " << edge;
        auto back = tiled.value().toDense();
        ASSERT_TRUE(back.ok());
        EXPECT_TRUE(bitwiseEqual(back.value(), dense))
            << "tile edge " << edge;

        // Per-view reads match the dense views bitwise.
        for (const size_t x : {0u, 17u, 36u}) {
            auto cs = tiled.value().crossSection(x);
            ASSERT_TRUE(cs.ok());
            EXPECT_TRUE(
                bitwiseEqual(cs.value(), dense.crossSection(x)));
        }
        for (const size_t z : {0u, 7u, 10u}) {
            auto pv = tiled.value().planarView(z);
            ASSERT_TRUE(pv.ok());
            EXPECT_TRUE(
                bitwiseEqual(pv.value(), dense.planarView(z)));
        }
        auto slab = tiled.value().planarSlab(2, 9);
        ASSERT_TRUE(slab.ok());
        EXPECT_TRUE(
            bitwiseEqual(slab.value(), dense.planarSlab(2, 9)));
    }
}

TEST(TiledVolume, StreamedWritesMatchDenseUnderDirtyBudget)
{
    Volume3D dense(30, 19, 13);
    common::Rng rng(13, 1);
    for (size_t i = 0; i < 30 * 19 * 13; ++i)
        dense.mutableData()[i] = static_cast<float>(rng.uniform());

    TileStoreConfig cfg;
    cfg.dir = scratchDir("streamwrite");
    TileStore store(std::move(cfg));

    // Dirty budget of exactly one 8^3 tile: every cross-section write
    // churns seals, which must not change the content.
    auto made = TiledVolume3D::create(30, 19, 13, store, 8,
                                      8 * 8 * 8 * sizeof(float));
    ASSERT_TRUE(made.ok());
    TiledVolume3D tiled = made.takeValue();
    for (size_t x = 0; x < 30; ++x)
        ASSERT_FALSE(
            tiled.setCrossSection(x, dense.crossSection(x)));
    ASSERT_FALSE(tiled.sealAll());

    auto back = tiled.toDense();
    ASSERT_TRUE(back.ok());
    EXPECT_TRUE(bitwiseEqual(back.value(), dense));

    // digests() round-trips through fromDigests.
    auto digests = tiled.digests();
    ASSERT_TRUE(digests.ok());
    auto relinked = TiledVolume3D::fromDigests(
        30, 19, 13, 8, digests.value(), store);
    ASSERT_TRUE(relinked.ok());
    auto again = relinked.value().toDense();
    ASSERT_TRUE(again.ok());
    EXPECT_TRUE(bitwiseEqual(again.value(), dense));
}

TEST(TiledVolume, ZeroTilesCollapseToOneStoredTile)
{
    TileStore store(TileStoreConfig{});
    auto made = TiledVolume3D::create(20, 20, 20, store, 8);
    ASSERT_TRUE(made.ok());
    TiledVolume3D v = made.takeValue();
    auto digests = v.digests();
    ASSERT_TRUE(digests.ok());
    ASSERT_EQ(digests.value().size(), 27u);
    for (const uint64_t d : digests.value())
        EXPECT_EQ(d, digests.value().front());
    EXPECT_EQ(store.residentTiles(), 1u);
}

TEST(TiledVolume, TypedErrors)
{
    TileStore store(TileStoreConfig{});
    auto zero = TiledVolume3D::create(0, 4, 4, store);
    ASSERT_FALSE(zero.ok());
    EXPECT_EQ(zero.error().code, ErrorCode::InvalidArgument);

    auto made = TiledVolume3D::create(4, 4, 4, store, 4);
    ASSERT_TRUE(made.ok());
    TiledVolume3D v = made.takeValue();
    EXPECT_EQ(v.crossSection(4).error().code,
              ErrorCode::InvalidArgument);
    EXPECT_EQ(v.planarView(7).error().code,
              ErrorCode::InvalidArgument);
    EXPECT_EQ(v.planarSlab(2, 2).error().code,
              ErrorCode::InvalidArgument);
    EXPECT_EQ(v.at(0, 0, 9).error().code,
              ErrorCode::InvalidArgument);

    auto short_list = TiledVolume3D::fromDigests(
        4, 4, 4, 4, std::vector<uint64_t>{1, 2}, store);
    ASSERT_FALSE(short_list.ok());
    EXPECT_EQ(short_list.error().code, ErrorCode::DataLoss);

    auto unknown = TiledVolume3D::fromDigests(
        4, 4, 4, 4, std::vector<uint64_t>{42}, store);
    ASSERT_FALSE(unknown.ok());
    EXPECT_EQ(unknown.error().code, ErrorCode::DataLoss);
}

// ---- Volume3D typed validation ---------------------------------------

TEST(Volume3DChecked, ConstructionAndViewRangesAreTyped)
{
    auto zero = Volume3D::createChecked(0, 3, 3);
    ASSERT_FALSE(zero.ok());
    EXPECT_EQ(zero.error().code, ErrorCode::InvalidArgument);

    auto ok = Volume3D::createChecked(4, 3, 2, 0.5f);
    ASSERT_TRUE(ok.ok());
    const Volume3D &v = ok.value();

    EXPECT_TRUE(v.crossSectionChecked(3).ok());
    EXPECT_EQ(v.crossSectionChecked(4).error().code,
              ErrorCode::InvalidArgument);
    EXPECT_TRUE(v.planarViewChecked(1).ok());
    EXPECT_EQ(v.planarViewChecked(2).error().code,
              ErrorCode::InvalidArgument);
    EXPECT_TRUE(v.planarSlabChecked(0, 2).ok());
    EXPECT_EQ(v.planarSlabChecked(1, 1).error().code,
              ErrorCode::InvalidArgument);
    EXPECT_EQ(v.planarSlabChecked(0, 3).error().code,
              ErrorCode::InvalidArgument);
}

// ---- Streaming acquisition -------------------------------------------

TEST(StreamingAcquire, MatchesCollectedAcquireBitwise)
{
    const auto vol = makeScene();
    const auto params = sceneParams();
    const auto faults = noisyFaults();
    scope::RecoveryParams recovery;

    const auto reference =
        scope::acquireRobust(vol, params, faults, recovery, 33);

    std::vector<scope::StreamedSlice> streamed;
    const auto stats = scope::acquireRobustStreamed(
        vol, params, faults, recovery, 33,
        [&](scope::StreamedSlice &&s) {
            streamed.push_back(std::move(s));
        });

    ASSERT_EQ(streamed.size(), reference.stack.slices.size());
    for (size_t i = 0; i < streamed.size(); ++i) {
        EXPECT_EQ(streamed[i].index, i);
        EXPECT_TRUE(bitwiseEqual(streamed[i].frame,
                                 reference.stack.slices[i]))
            << "slice " << i;
        EXPECT_EQ(streamed[i].drift, reference.stack.trueDrift[i]);
    }
    EXPECT_EQ(stats.slicesRetried, reference.slicesRetried);
    EXPECT_EQ(stats.retries, reference.retries);
    EXPECT_EQ(stats.slicesInterpolated,
              reference.slicesInterpolated);
    EXPECT_EQ(stats.slicesUnrecoverable,
              reference.slicesUnrecoverable);
    EXPECT_EQ(stats.faultsInjected, reference.faultsInjected);
    EXPECT_EQ(stats.faultsDetected, reference.faultsDetected);
    EXPECT_EQ(stats.interpolatedSlices,
              reference.interpolatedSlices);
    EXPECT_DOUBLE_EQ(stats.qcConfidence, reference.qcConfidence);
    EXPECT_GT(stats.slicesInterpolated, 0u)
        << "scene/faults no longer exercise the interpolation path";
}

TEST(StreamingAcquire, WindowingKeepsSolverLaneOccupancy)
{
    const auto vol = makeScene();
    const auto params = sceneParams();
    scope::FaultParams faults; // clean run: 60 slices
    scope::RecoveryParams recovery;

    std::vector<scope::SliceWindow> windows;
    scope::SliceWindowing grouping(
        scope::kStreamWindowSlices,
        [&](scope::SliceWindow &&w) {
            windows.push_back(std::move(w));
        });
    const auto stats = scope::acquireRobustStreamed(
        vol, params, faults, recovery, 5, grouping.consumer());
    grouping.flush();

    ASSERT_EQ(stats.slices, 60u);
    size_t covered = 0;
    for (size_t i = 0; i < windows.size(); ++i) {
        EXPECT_EQ(windows[i].begin, covered);
        // Every window except the last is exactly one solver batch
        // (circuit::TranParams::batchLanes) wide.
        if (i + 1 < windows.size()) {
            EXPECT_EQ(windows[i].slices.size(),
                      scope::kStreamWindowSlices);
        }
        covered += windows[i].slices.size();
    }
    EXPECT_EQ(covered, 60u);
}

// ---- Streaming post-processing ---------------------------------------

TEST(StreamingPostprocess, BitwiseIdenticalToDenseChain)
{
    const auto vol = makeScene();
    const auto robust = scope::acquireRobust(
        vol, sceneParams(), noisyFaults(), scope::RecoveryParams{},
        33);
    const scope::PostprocessParams pp;

    const auto dense = scope::postprocess(robust.stack, pp);

    struct Case
    {
        size_t threads, tileEdge, window;
        size_t dirtyBudget;
    };
    const Case cases[] = {
        {1, 16, 3, 0},
        {2, 64, scope::kStreamWindowSlices, 0},
        // Dirty budget of two tiles: assembly churns seal/reload.
        {8, 16, 5, 2 * 16 * 16 * 16 * sizeof(float)},
    };
    for (const Case &c : cases) {
        common::ScopedThreads threads(c.threads);
        TileStoreConfig cfg;
        cfg.dir = scratchDir(
            "pp_" + std::to_string(c.threads) + "_" +
            std::to_string(c.tileEdge) + "_" +
            std::to_string(c.window));
        TileStore store(std::move(cfg));
        auto streamed = scope::postprocessStreamed(
            robust.stack, store, pp, c.tileEdge, c.dirtyBudget,
            c.window);
        ASSERT_TRUE(streamed.ok());
        EXPECT_EQ(streamed.value().shifts, dense.shifts);
        EXPECT_EQ(streamed.value().alignmentResidualPx,
                  dense.alignmentResidualPx);
        auto back = streamed.value().volume.toDense();
        ASSERT_TRUE(back.ok());
        EXPECT_TRUE(bitwiseEqual(back.value(), dense.volume))
            << "threads=" << c.threads << " edge=" << c.tileEdge
            << " window=" << c.window;
    }
}

// ---- Memory-budgeted pipeline ----------------------------------------

TEST(MemoryBudget, BudgetedPipelineReportMatchesInRam)
{
    core::PipelineConfig config;
    config.chipId = "B5";
    config.pairs = 2;
    config.faults.enabled = true;
    config.seed = 42;
    config.threads = 2;

    auto baseline = core::runPipelineChecked(config);
    ASSERT_TRUE(baseline.ok());

    core::PipelineConfig budgeted = config;
    budgeted.memoryBudget = 32ull << 20;
    budgeted.spillDir = scratchDir("budgeted");
    auto tiled = core::runPipelineChecked(budgeted);
    ASSERT_TRUE(tiled.ok());

    EXPECT_EQ(core::reportDigest(baseline.value()),
              core::reportDigest(tiled.value()));
}

TEST(MemoryBudget, ConfigValidationIsTyped)
{
    core::PipelineConfig config;
    config.chipId = "B5";
    config.pairs = 2;
    config.seed = 1;

    config.memoryBudget = 1024; // below the floor
    auto small = core::runPipelineChecked(config);
    ASSERT_FALSE(small.ok());
    EXPECT_EQ(small.error().code, ErrorCode::InvalidArgument);

    config.memoryBudget = 0;
    config.spillDir = "/tmp/never-used"; // spill dir without budget
    auto orphan = core::runPipelineChecked(config);
    ASSERT_FALSE(orphan.ok());
    EXPECT_EQ(orphan.error().code, ErrorCode::InvalidArgument);
}

} // namespace
