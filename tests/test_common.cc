/**
 * @file
 * Unit tests for the common module: units, geometry, RNG, stats, tables.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/csv.hh"
#include "common/log.hh"
#include "common/geometry.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "common/units.hh"

namespace
{

using namespace hifi;
using common::Accumulator;
using common::Histogram;
using common::Rect;
using common::Rng;
using common::Table;
using common::Vec2;

TEST(Units, LengthConversions)
{
    EXPECT_DOUBLE_EQ(units::um, 1000.0);
    EXPECT_DOUBLE_EQ(units::mm, 1e6);
    EXPECT_DOUBLE_EQ(units::toUm(2500.0), 2.5);
    EXPECT_DOUBLE_EQ(units::toMm2(units::mm2), 1.0);
    EXPECT_DOUBLE_EQ(units::toUm2(3.0 * units::um2), 3.0);
}

TEST(Units, TimeAndElectrical)
{
    EXPECT_DOUBLE_EQ(units::ns, 1e-9);
    EXPECT_DOUBLE_EQ(units::us / units::ns, 1000.0);
    EXPECT_DOUBLE_EQ(units::fF, 1e-15);
    EXPECT_DOUBLE_EQ(units::mV * 1000.0, units::V);
}

TEST(Rect, BasicProperties)
{
    Rect r(10, 20, 40, 60);
    EXPECT_DOUBLE_EQ(r.width(), 30);
    EXPECT_DOUBLE_EQ(r.height(), 40);
    EXPECT_DOUBLE_EQ(r.area(), 1200);
    EXPECT_FALSE(r.empty());
    EXPECT_TRUE(Rect().empty());
    EXPECT_DOUBLE_EQ(Rect().area(), 0.0);
}

TEST(Rect, FromSize)
{
    Rect r = Rect::fromSize(5, 6, 10, 20);
    EXPECT_EQ(r, Rect(5, 6, 15, 26));
}

TEST(Rect, ContainsAndCenter)
{
    Rect r(0, 0, 10, 10);
    EXPECT_TRUE(r.contains({5, 5}));
    EXPECT_TRUE(r.contains({0, 0}));
    EXPECT_FALSE(r.contains({10, 10})); // half-open
    Vec2 c = r.center();
    EXPECT_DOUBLE_EQ(c.x, 5);
    EXPECT_DOUBLE_EQ(c.y, 5);
}

TEST(Rect, OverlapIntersectUnite)
{
    Rect a(0, 0, 10, 10), b(5, 5, 15, 15), c(20, 20, 30, 30);
    EXPECT_TRUE(a.overlaps(b));
    EXPECT_FALSE(a.overlaps(c));
    Rect i = a.intersect(b);
    EXPECT_EQ(i, Rect(5, 5, 10, 10));
    EXPECT_TRUE(a.intersect(c).empty());
    Rect u = a.unite(b);
    EXPECT_EQ(u, Rect(0, 0, 15, 15));
    EXPECT_EQ(Rect().unite(a), a);
}

TEST(Rect, TouchingRectsDoNotOverlap)
{
    Rect a(0, 0, 10, 10), b(10, 0, 20, 10);
    EXPECT_FALSE(a.overlaps(b));
    EXPECT_DOUBLE_EQ(a.gapTo(b), 0.0);
}

TEST(Rect, GapTo)
{
    Rect a(0, 0, 10, 10);
    EXPECT_DOUBLE_EQ(a.gapTo(Rect(15, 0, 20, 10)), 5.0);
    EXPECT_DOUBLE_EQ(a.gapTo(Rect(0, 13, 10, 20)), 3.0);
    // Diagonal: Euclidean corner distance.
    EXPECT_DOUBLE_EQ(a.gapTo(Rect(13, 14, 20, 20)), 5.0);
    EXPECT_DOUBLE_EQ(a.gapTo(Rect(2, 2, 5, 5)), 0.0);
}

TEST(Rect, InflateTranslate)
{
    Rect r(10, 10, 20, 20);
    EXPECT_EQ(r.inflate(2), Rect(8, 8, 22, 22));
    EXPECT_EQ(r.translate(5, -5), Rect(15, 5, 25, 15));
}

TEST(Rng, Determinism)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 4);
}

TEST(Rng, UniformRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(2.0, 5.0);
        EXPECT_GE(u, 2.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, BelowRange)
{
    Rng rng(8);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(17), 17u);
    EXPECT_EQ(rng.below(0), 0u);
    EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(9);
    Accumulator acc;
    for (int i = 0; i < 20000; ++i)
        acc.add(rng.gaussian(3.0, 2.0));
    EXPECT_NEAR(acc.mean(), 3.0, 0.1);
    EXPECT_NEAR(acc.stddev(), 2.0, 0.1);
}

TEST(Rng, PoissonMeanSmall)
{
    Rng rng(10);
    Accumulator acc;
    for (int i = 0; i < 20000; ++i)
        acc.add(static_cast<double>(rng.poisson(4.0)));
    EXPECT_NEAR(acc.mean(), 4.0, 0.15);
}

TEST(Rng, PoissonMeanLarge)
{
    Rng rng(11);
    Accumulator acc;
    for (int i = 0; i < 20000; ++i)
        acc.add(static_cast<double>(rng.poisson(400.0)));
    EXPECT_NEAR(acc.mean(), 400.0, 2.0);
    EXPECT_NEAR(acc.stddev(), 20.0, 1.0);
}

TEST(Rng, PoissonZeroMean)
{
    Rng rng(12);
    EXPECT_EQ(rng.poisson(0.0), 0u);
    EXPECT_EQ(rng.poisson(-1.0), 0u);
}

TEST(Stats, AccumulatorBasics)
{
    Accumulator acc;
    EXPECT_EQ(acc.count(), 0u);
    EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
    acc.add(2.0);
    acc.add(4.0);
    acc.add(6.0);
    EXPECT_EQ(acc.count(), 3u);
    EXPECT_DOUBLE_EQ(acc.mean(), 4.0);
    EXPECT_DOUBLE_EQ(acc.min(), 2.0);
    EXPECT_DOUBLE_EQ(acc.max(), 6.0);
    EXPECT_NEAR(acc.variance(), 8.0 / 3.0, 1e-12);
}

TEST(Stats, AccumulatorMerge)
{
    Accumulator a, b, all;
    for (int i = 0; i < 10; ++i) {
        a.add(i);
        all.add(i);
    }
    for (int i = 10; i < 25; ++i) {
        b.add(i * 1.5);
        all.add(i * 1.5);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Stats, MergeIntoEmpty)
{
    Accumulator a, b;
    b.add(5.0);
    b.add(7.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 6.0);
}

TEST(Stats, Histogram)
{
    Histogram h(0.0, 10.0, 10);
    for (int i = 0; i < 5; ++i)
        h.add(3.5);
    h.add(9.99);
    h.add(-1.0);  // below range: ignored
    h.add(10.0);  // at high edge: ignored
    EXPECT_EQ(h.total(), 6u);
    EXPECT_EQ(h.count(3), 5u);
    EXPECT_EQ(h.count(9), 1u);
    EXPECT_EQ(h.modeBin(), 3u);
    EXPECT_DOUBLE_EQ(h.binLow(3), 3.0);
    EXPECT_DOUBLE_EQ(h.binHigh(3), 4.0);
}

TEST(Stats, HistogramRejectsBadArgs)
{
    EXPECT_THROW(Histogram(0.0, 0.0, 4), std::invalid_argument);
    EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Stats, MedianAndMean)
{
    EXPECT_DOUBLE_EQ(common::median({}), 0.0);
    EXPECT_DOUBLE_EQ(common::median({3.0}), 3.0);
    EXPECT_DOUBLE_EQ(common::median({1.0, 2.0, 9.0}), 2.0);
    EXPECT_DOUBLE_EQ(common::median({1.0, 2.0, 3.0, 4.0}), 2.5);
    EXPECT_DOUBLE_EQ(common::mean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(common::mean({}), 0.0);
}

TEST(Table, FormatsAlignedColumns)
{
    Table t({"ID", "Value"});
    t.addRow({"A4", "34"});
    t.addRow({"B5long", "7"});
    std::ostringstream ss;
    t.print(ss);
    const std::string out = ss.str();
    EXPECT_NE(out.find("| ID "), std::string::npos);
    EXPECT_NE(out.find("| B5long "), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RejectsMismatchedRow)
{
    Table t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), std::invalid_argument);
    EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, NumberFormatters)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::times(175.0, 0), "175x");
    EXPECT_EQ(Table::times(-0.25, 2), "-0.25x");
    EXPECT_EQ(Table::percent(2.36, 0), "236%");
}

TEST(Log, LevelsAndWarnCounter)
{
    const auto before = common::warnCount();
    common::setLogLevel(common::LogLevel::Silent);
    common::warn("silent warning");
    EXPECT_EQ(common::warnCount(), before + 1); // counted even silent
    common::inform("silent info");
    common::setLogLevel(common::LogLevel::Warn);
    EXPECT_EQ(common::logLevel(), common::LogLevel::Warn);
    common::setLogLevel(common::LogLevel::Silent);
}

TEST(Csv, WritesRows)
{
    const std::string path = "/tmp/hifi_test_csv.csv";
    {
        common::CsvWriter w(path, {"t", "v"});
        w.addRow({0.0, 1.0});
        w.addRow({1.0, 2.5});
        EXPECT_EQ(w.rows(), 2u);
        EXPECT_THROW(w.addRow({1.0}), std::invalid_argument);
    }
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "t,v");
    std::getline(in, line);
    EXPECT_EQ(line, "0,1");
}

} // namespace
