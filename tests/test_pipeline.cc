/**
 * @file
 * Integration tests for the end-to-end pipeline: virtual fab ->
 * FIB/SEM -> post-processing -> reverse engineering, validated against
 * the generated ground truth on every studied chip configuration.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/pipeline.hh"
#include "core/study.hh"
#include "fab/sa_region.hh"
#include "re/netlist_build.hh"

namespace
{

using namespace hifi;
using models::Role;
using models::Topology;

class PipelinePerChip : public ::testing::TestWithParam<const char *>
{
};

TEST_P(PipelinePerChip, RecoversTopologyAndStructure)
{
    core::PipelineConfig config;
    config.chipId = GetParam();
    config.pairs = 3;
    config.seed = 42;

    const core::PipelineReport report = core::runPipeline(config);

    EXPECT_TRUE(report.topologyCorrect)
        << report.chipId << ": extracted "
        << (report.extractedTopology == Topology::Ocsa ? "OCSA"
                                                       : "classic")
        << " strips=" << report.extractedCommonGateStrips;
    EXPECT_EQ(report.extractedCommonGateStrips,
              report.trueCommonGateStrips);
    EXPECT_EQ(report.bitlinesFound, report.bitlinesTrue);
    EXPECT_TRUE(report.crossCouplingConsistent) << report.chipId;

    // Every role present in the truth must be recovered with sane
    // dimensions (within ~1.5 slices of the drawn values).
    const models::ChipSpec &chip = models::chip(config.chipId);
    const double tol = 1.5 * chip.sliceNm;
    for (const auto &[role, rec] : report.roles) {
        EXPECT_GT(rec.measuredW, 0.0)
            << report.chipId << " missing " << models::roleName(role);
        if (rec.measuredW > 0.0) {
            EXPECT_NEAR(rec.measuredW, rec.trueW, tol)
                << report.chipId << " " << models::roleName(role);
            EXPECT_NEAR(rec.measuredL, rec.trueL, tol)
                << report.chipId << " " << models::roleName(role);
        }
    }

    // Alignment met the paper's 0.77% budget.
    EXPECT_TRUE(report.alignmentBudgetMet)
        << "residual " << report.alignmentResidualPx << " px";
}

INSTANTIATE_TEST_SUITE_P(AllChips, PipelinePerChip,
                         ::testing::Values("A4", "B4", "C4", "A5",
                                           "B5", "C5"));

TEST(Pipeline, DeviceCountsMatchTruth)
{
    core::PipelineConfig config;
    config.chipId = "B5";
    config.pairs = 3;
    config.seed = 7;
    const auto report = core::runPipeline(config);
    EXPECT_EQ(report.extractedDevices, report.trueDevices);
    // OCSA slice with 3 pairs: 6 column, 3 iso, 3 oc, 6 nSA, 6 pSA,
    // 3 precharge, 3 LSA.
    EXPECT_EQ(report.analysis.countRole(Role::Column), 6u);
    EXPECT_EQ(report.analysis.countRole(Role::Iso), 3u);
    EXPECT_EQ(report.analysis.countRole(Role::Oc), 3u);
    EXPECT_EQ(report.analysis.countRole(Role::Nsa), 6u);
    EXPECT_EQ(report.analysis.countRole(Role::Psa), 6u);
    EXPECT_EQ(report.analysis.countRole(Role::Precharge), 3u);
    EXPECT_EQ(report.analysis.countRole(Role::Lsa), 3u);
    EXPECT_EQ(report.analysis.countRole(Role::Equalizer), 0u);
}

TEST(Pipeline, ClassicChipHasEqualizerNoIsoOc)
{
    core::PipelineConfig config;
    config.chipId = "C4";
    config.pairs = 3;
    config.seed = 7;
    const auto report = core::runPipeline(config);
    EXPECT_GT(report.analysis.countRole(Role::Equalizer), 0u);
    EXPECT_EQ(report.analysis.countRole(Role::Iso), 0u);
    EXPECT_EQ(report.analysis.countRole(Role::Oc), 0u);
}

TEST(Pipeline, ReconstructedNetlistSensesCorrectly)
{
    // Close the loop: the reverse-engineered circuit, rebuilt as a
    // netlist with the measured dimensions, must latch correctly in
    // transient simulation.
    core::PipelineConfig config;
    config.chipId = "B5";
    config.pairs = 2;
    config.seed = 3;
    const auto report = core::runPipeline(config);

    circuit::SaParams params =
        re::saParamsFromAnalysis(report.analysis);
    EXPECT_EQ(params.topology,
              circuit::SaTopology::OffsetCancellation);

    params.storeOne = true;
    const circuit::SaRun one = circuit::simulateActivation(params);
    EXPECT_TRUE(one.latchedCorrectly);

    params.storeOne = false;
    const circuit::SaRun zero = circuit::simulateActivation(params);
    EXPECT_TRUE(zero.latchedCorrectly);
}

class PipelineSeedSweep : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(PipelineSeedSweep, RobustAcrossAcquisitionNoise)
{
    // The reverse engineering must not depend on a lucky noise draw:
    // topology, structure and cross-coupling hold for every seed.
    core::PipelineConfig config;
    config.chipId = "C5";
    config.pairs = 2;
    config.seed = GetParam();
    const auto report = core::runPipeline(config);
    EXPECT_TRUE(report.topologyCorrect) << "seed " << GetParam();
    EXPECT_EQ(report.extractedDevices, report.trueDevices)
        << "seed " << GetParam();
    EXPECT_TRUE(report.crossCouplingConsistent)
        << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineSeedSweep,
                         ::testing::Values(101, 202, 303, 404));

class StackedSasTest : public ::testing::TestWithParam<const char *>
{
};

TEST_P(StackedSasTest, TwoStackedSasRecoverFully)
{
    // Section V-C: every studied chip places two stacked SAs between
    // MATs (MAT | SA1 | SA2 | MAT).  The RE must handle the mirrored
    // second set: reversed strip order, columns at both ends.
    core::PipelineConfig config;
    config.chipId = GetParam();
    config.pairs = 4;
    config.stackedSas = 2;
    config.seed = 42;
    const auto rep = core::runPipeline(config);

    EXPECT_TRUE(rep.topologyCorrect) << rep.chipId;
    EXPECT_EQ(rep.extractedCommonGateStrips,
              rep.trueCommonGateStrips);
    const bool ocsa =
        models::chip(config.chipId).topology == Topology::Ocsa;
    EXPECT_EQ(rep.trueCommonGateStrips, ocsa ? 6u : 2u);
    EXPECT_EQ(rep.extractedDevices, rep.trueDevices);
    EXPECT_TRUE(rep.crossCouplingConsistent);
    EXPECT_GT(rep.matchScore, 0.9);
}

INSTANTIATE_TEST_SUITE_P(OneOcsaOneClassic, StackedSasTest,
                         ::testing::Values("B5", "C4"));

TEST(Pipeline, SurvivesProcessVariation)
{
    // With per-device dimension jitter in the fab, the RE still
    // recovers the structure; measured role means track the jittered
    // truth means (which the report compares against by design).
    fab::SaRegionSpec spec =
        fab::SaRegionSpec::fromChip(models::chip("C5"), 3);
    spec.dimJitterNm = 3.0;
    spec.jitterSeed = 9;
    fab::SaRegionTruth truth;
    fab::buildSaRegion(spec, truth);

    // Jitter actually varies the drawn devices.
    double w_min = 1e9, w_max = 0.0;
    for (const auto &d : truth.devices) {
        if (d.role != Role::Nsa)
            continue;
        w_min = std::min(w_min, d.gate.width());
        w_max = std::max(w_max, d.gate.width());
    }
    EXPECT_GT(w_max - w_min, 1.0);
    EXPECT_LT(w_max - w_min, 20.0);
}

TEST(Pipeline, DeterministicGivenSeed)
{
    core::PipelineConfig config;
    config.chipId = "C5";
    config.pairs = 2;
    config.seed = 11;
    const auto a = core::runPipeline(config);
    const auto b = core::runPipeline(config);
    EXPECT_EQ(a.extractedDevices, b.extractedDevices);
    EXPECT_EQ(a.alignmentResidualPx, b.alignmentResidualPx);
    EXPECT_EQ(a.maxDimErrorNm, b.maxDimErrorNm);
}

TEST(Pipeline, RepeatabilityAcrossAcquisitions)
{
    // The in-silico analogue of the paper's repeated measurements:
    // independent acquisitions agree to within a few nm.
    core::PipelineConfig base;
    base.chipId = "C5";
    base.pairs = 2;
    base.seed = 900;
    const auto rep = core::repeatPipeline(base, 3);
    EXPECT_EQ(rep.topologyCorrect, 3u);
    EXPECT_EQ(rep.crossCouplingTraced, 3u);
    const auto it = rep.dims.find(Role::Nsa);
    ASSERT_NE(it, rep.dims.end());
    EXPECT_EQ(it->second.first.count(), 3u);
    EXPECT_LT(it->second.first.stddev(), 4.0); // W spread < 4 nm
    EXPECT_LT(it->second.second.stddev(), 4.0);
}

TEST(Study, SingleChipReportContainsAllSections)
{
    core::StudyConfig config;
    config.chips = {"C5"};
    config.pairs = 2;
    config.seed = 5;
    const auto result = core::runFullStudy(config);
    EXPECT_EQ(result.chipsStudied, 1u);
    EXPECT_TRUE(result.allTopologiesCorrect);
    EXPECT_TRUE(result.allCrossCouplingsTraced);
    for (const char *needle :
         {"Imaging methodology", "Reverse engineering",
          "Measurements", "Public model accuracy", "Research audit",
          "Recommendations", "CoolDRAM", "classic SA", "R4"}) {
        EXPECT_NE(result.markdown.find(needle), std::string::npos)
            << needle;
    }
}

} // namespace
