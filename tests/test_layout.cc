/**
 * @file
 * Tests for the layout module: cells, design rules, free-track
 * analysis (I1/I2), and the binary GDSII writer/reader.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.hh"

#include "layout/cell.hh"
#include "layout/design_rules.hh"
#include "layout/gdsii.hh"
#include "layout/layer.hh"

namespace
{

using namespace hifi;
using common::Rect;
using layout::Cell;
using layout::DesignRules;
using layout::Layer;

TEST(Layer, NamesAndGdsNumbers)
{
    EXPECT_EQ(layout::layerName(Layer::Metal1), "Metal1");
    EXPECT_EQ(layout::gdsLayerNumber(Layer::Active), 1);
    EXPECT_EQ(layout::layerFromGdsNumber(4), Layer::Metal1);
    EXPECT_THROW(layout::layerFromGdsNumber(0), std::invalid_argument);
    EXPECT_THROW(layout::layerFromGdsNumber(99), std::invalid_argument);
}

TEST(Layer, ZRangesAreStackedBottomUp)
{
    double prev_top = 0.0;
    for (auto layer : {Layer::Active, Layer::Gate, Layer::Contact,
                       Layer::Metal1, Layer::Via1, Layer::Metal2,
                       Layer::Capacitor}) {
        const auto z = layout::layerZ(layer);
        EXPECT_LT(z.z0, z.z1);
        EXPECT_GE(z.z0, prev_top);
        prev_top = z.z1;
    }
}

TEST(Cell, FlattenResolvesInstances)
{
    auto child = std::make_shared<Cell>("child");
    child->addShape(Rect(0, 0, 10, 10), Layer::Metal1, "net");

    Cell parent("parent");
    parent.addShape(Rect(100, 100, 110, 110), Layer::Gate);
    parent.addInstance(child, {50, 60});
    parent.addInstance(child, {200, 0});

    const auto flat = parent.flatten();
    ASSERT_EQ(flat.size(), 3u);
    // Instance offsets applied.
    bool found = false;
    for (const auto &s : flat)
        if (s.rect == Rect(50, 60, 60, 70))
            found = true;
    EXPECT_TRUE(found);
}

TEST(Cell, BoundingBoxAndAreas)
{
    Cell cell("c");
    cell.addShape(Rect(0, 0, 10, 10), Layer::Metal1);
    cell.addShape(Rect(20, 20, 40, 30), Layer::Metal1);
    cell.addShape(Rect(5, 5, 6, 6), Layer::Gate);
    EXPECT_EQ(cell.boundingBox(), Rect(0, 0, 40, 30));
    EXPECT_DOUBLE_EQ(cell.areaOnLayer(Layer::Metal1), 100 + 200);
    EXPECT_EQ(cell.countOnLayer(Layer::Metal1), 2u);
    EXPECT_EQ(cell.countOnLayer(Layer::Via1), 0u);
}

TEST(DesignRules, DetectsWidthViolation)
{
    DesignRules rules;
    rules.rule(Layer::Metal1) = {30.0, 20.0};
    Cell cell("c");
    cell.addShape(Rect(0, 0, 100, 25), Layer::Metal1, "thin");
    const auto violations = rules.check(cell);
    ASSERT_EQ(violations.size(), 1u);
    EXPECT_EQ(violations[0].kind,
              layout::Violation::Kind::Width);
}

TEST(DesignRules, DetectsSpacingViolationAcrossNets)
{
    DesignRules rules;
    rules.rule(Layer::Metal1) = {10.0, 20.0};
    Cell cell("c");
    cell.addShape(Rect(0, 0, 50, 15), Layer::Metal1, "a");
    cell.addShape(Rect(0, 25, 50, 40), Layer::Metal1, "b"); // gap 10
    auto violations = rules.check(cell);
    ASSERT_EQ(violations.size(), 1u);
    EXPECT_EQ(violations[0].kind, layout::Violation::Kind::Spacing);

    // Same net may abut freely.
    Cell ok("ok");
    ok.addShape(Rect(0, 0, 50, 15), Layer::Metal1, "n");
    ok.addShape(Rect(0, 15, 50, 30), Layer::Metal1, "n");
    EXPECT_TRUE(rules.check(ok).empty());
}

TEST(DesignRules, CleanLayoutPasses)
{
    DesignRules rules;
    rules.rule(Layer::Metal1) = {10.0, 10.0};
    Cell cell("c");
    cell.addShape(Rect(0, 0, 50, 15), Layer::Metal1, "a");
    cell.addShape(Rect(0, 30, 50, 45), Layer::Metal1, "b");
    EXPECT_TRUE(rules.check(cell).empty());
}

TEST(DesignRules, FreeTracksOnEmptyRegion)
{
    DesignRules rules;
    rules.rule(Layer::Metal1) = {20.0, 20.0};
    Cell cell("c");
    // 100 nm of free height: wires at 40 nm pitch -> 2 disjoint
    // tracks fit ((100 - 20) / 40 + 1 = 3)? The scan counts
    // placements: run of valid bottoms = 80 nm -> 1 + 80/40 = 3.
    const size_t tracks =
        rules.freeTracks(cell, Layer::Metal1, Rect(0, 0, 500, 100));
    EXPECT_EQ(tracks, 3u);
}

TEST(DesignRules, FreeTracksZeroWhenPacked)
{
    // Reproduces Fig. 13: bitlines at minimum pitch leave no track.
    DesignRules rules;
    rules.rule(Layer::Metal1) = {21.5, 10.5};
    Cell cell("mat");
    for (int i = 0; i < 8; ++i) {
        const double y = 10.0 + i * 32.0;
        cell.addShape(Rect(0, y, 2000, y + 21.5), Layer::Metal1,
                      "BL" + std::to_string(i));
    }
    const common::Rect region = cell.boundingBox();
    EXPECT_EQ(rules.freeTracks(cell, Layer::Metal1, region), 0u);
}

TEST(DesignRules, FreeTracksAppearAfterRemovingAWire)
{
    DesignRules rules;
    rules.rule(Layer::Metal1) = {21.5, 10.5};
    Cell cell("mat");
    for (int i = 0; i < 8; ++i) {
        if (i == 4)
            continue; // one wire removed
        const double y = 10.0 + i * 32.0;
        cell.addShape(Rect(0, y, 2000, y + 21.5), Layer::Metal1,
                      "BL" + std::to_string(i));
    }
    const Rect region(0, 0, 2000, 10.0 + 8 * 32.0);
    EXPECT_GE(rules.freeTracks(cell, Layer::Metal1, region), 1u);
}

// ---- GDSII -----------------------------------------------------------

TEST(Gdsii, RealEncodingRoundTrip)
{
    using layout::detail::decodeGdsReal;
    using layout::detail::encodeGdsReal;
    for (double v : {0.0, 1.0, -1.0, 0.001, 1e-9, 1e-3, 123456.0,
                     -0.5, 3.14159265}) {
        EXPECT_NEAR(decodeGdsReal(encodeGdsReal(v)), v,
                    std::abs(v) * 1e-12 + 1e-30)
            << v;
    }
}

TEST(Gdsii, KnownEncodings)
{
    using layout::detail::encodeGdsReal;
    // 1.0 = 0x4110000000000000 in GDSII excess-64 format.
    EXPECT_EQ(encodeGdsReal(1.0), 0x4110000000000000ull);
    // 0.0 encodes as all zero.
    EXPECT_EQ(encodeGdsReal(0.0), 0ull);
    // Sign bit set for negatives.
    EXPECT_EQ(encodeGdsReal(-1.0) >> 63, 1ull);
}

TEST(Gdsii, StreamRoundTrip)
{
    Cell cell("TESTCELL");
    cell.addShape(Rect(0, 0, 100, 50), Layer::Metal1, "BL0");
    cell.addShape(Rect(10, 60, 35, 90), Layer::Gate, "WL");
    cell.addShape(Rect(-20, -30, -5, -10), Layer::Active);

    std::stringstream ss;
    layout::writeGds(ss, cell);

    const Cell back = layout::readGds(ss);
    EXPECT_EQ(back.name(), "TESTCELL");
    ASSERT_EQ(back.shapes().size(), 3u);
    EXPECT_EQ(back.shapes()[0].rect, Rect(0, 0, 100, 50));
    EXPECT_EQ(back.shapes()[0].layer, Layer::Metal1);
    EXPECT_EQ(back.shapes()[1].layer, Layer::Gate);
    EXPECT_EQ(back.shapes()[2].rect, Rect(-20, -30, -5, -10));
}

TEST(Gdsii, RoundTripFlattensHierarchy)
{
    auto child = std::make_shared<Cell>("sub");
    child->addShape(Rect(0, 0, 5, 5), Layer::Via1);
    Cell parent("TOP");
    parent.addInstance(child, {100, 200});

    std::stringstream ss;
    layout::writeGds(ss, parent);
    const Cell back = layout::readGds(ss);
    ASSERT_EQ(back.shapes().size(), 1u);
    EXPECT_EQ(back.shapes()[0].rect, Rect(100, 200, 105, 205));
}

TEST(Gdsii, HierarchicalRoundTripPreservesStructure)
{
    auto leaf = std::make_shared<Cell>("LEAF");
    leaf->addShape(Rect(0, 0, 10, 10), Layer::Contact);

    auto mid = std::make_shared<Cell>("MID");
    mid->addShape(Rect(0, 0, 100, 20), Layer::Metal1);
    mid->addInstance(leaf, {40, 5});

    Cell top("TOP");
    top.addShape(Rect(-50, -50, 400, 300), Layer::Active);
    top.addInstance(mid, {0, 0});
    top.addInstance(mid, {0, 100});
    top.addInstance(leaf, {300, 200});

    layout::GdsOptions opts;
    opts.flatten = false;
    std::stringstream ss;
    layout::writeGds(ss, top, opts);

    const Cell back = layout::readGds(ss);
    EXPECT_EQ(back.name(), "TOP");
    EXPECT_EQ(back.shapes().size(), 1u);     // own shapes only
    EXPECT_EQ(back.instances().size(), 3u);  // hierarchy preserved

    // Flattened geometry identical to the original.
    const auto a = top.flatten();
    const auto b = back.flatten();
    ASSERT_EQ(a.size(), b.size());
    double area_a = 0.0, area_b = 0.0;
    for (const auto &sh : a)
        area_a += sh.rect.area();
    for (const auto &sh : b)
        area_b += sh.rect.area();
    EXPECT_DOUBLE_EQ(area_a, area_b);
    EXPECT_EQ(top.boundingBox(), back.boundingBox());
}

TEST(Gdsii, SharedChildEmittedOnce)
{
    auto leaf = std::make_shared<Cell>("LEAF");
    leaf->addShape(Rect(0, 0, 5, 5), Layer::Via1);
    Cell top("TOP");
    for (int i = 0; i < 10; ++i)
        top.addInstance(leaf, {i * 20.0, 0.0});

    layout::GdsOptions opts;
    opts.flatten = false;
    std::stringstream ss;
    layout::writeGds(ss, top, opts);
    const std::string bytes = ss.str();

    // "LEAF" appears once as STRNAME and ten times as SNAME = 11.
    size_t count = 0;
    for (size_t pos = bytes.find("LEAF"); pos != std::string::npos;
         pos = bytes.find("LEAF", pos + 1))
        ++count;
    EXPECT_EQ(count, 11u);

    const Cell back = layout::readGds(ss);
    EXPECT_EQ(back.instances().size(), 10u);
    EXPECT_EQ(back.flatten().size(), 10u);
}

TEST(Gdsii, SrefToUnknownStructureThrows)
{
    // Hand-build a library with an SREF to a missing structure by
    // writing a hierarchy and truncating the child: simplest is a
    // reader-level check through a crafted stream.
    auto leaf = std::make_shared<Cell>("GOOD");
    leaf->addShape(Rect(0, 0, 5, 5), Layer::Via1);
    Cell top("TOP");
    top.addInstance(leaf, {0, 0});
    layout::GdsOptions opts;
    opts.flatten = false;
    std::stringstream ss;
    layout::writeGds(ss, top, opts);
    std::string bytes = ss.str();
    // Corrupt the SNAME reference so it no longer matches.
    const size_t pos = bytes.rfind("GOOD");
    bytes[pos] = 'B';
    std::stringstream corrupted(bytes);
    EXPECT_THROW(layout::readGds(corrupted), std::runtime_error);
}

TEST(Gdsii, FileRoundTrip)
{
    Cell cell("FILECELL");
    cell.addShape(Rect(1, 2, 30, 40), Layer::Contact);
    const std::string path = "/tmp/hifi_test.gds";
    layout::writeGdsFile(path, cell);
    const Cell back = layout::readGdsFile(path);
    EXPECT_EQ(back.name(), "FILECELL");
    ASSERT_EQ(back.shapes().size(), 1u);
    EXPECT_EQ(back.shapes()[0].layer, Layer::Contact);
}

class GdsiiFuzz : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(GdsiiFuzz, RandomRectSetsRoundTripExactly)
{
    hifi::common::Rng rng(GetParam());
    Cell cell("FUZZ");
    const size_t n = 20 + rng.below(60);
    for (size_t i = 0; i < n; ++i) {
        const double x0 = rng.uniform(-5e4, 5e4);
        const double y0 = rng.uniform(-5e4, 5e4);
        const double w = rng.uniform(1.0, 3e3);
        const double h = rng.uniform(1.0, 3e3);
        const auto layer = static_cast<Layer>(
            rng.below(layout::kNumLayers));
        cell.addShape(Rect(std::round(x0), std::round(y0),
                           std::round(x0 + w), std::round(y0 + h)),
                      layer);
    }
    std::stringstream ss;
    layout::writeGds(ss, cell);
    const Cell back = layout::readGds(ss);
    ASSERT_EQ(back.shapes().size(), n);
    for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(back.shapes()[i].rect, cell.shapes()[i].rect) << i;
        EXPECT_EQ(back.shapes()[i].layer, cell.shapes()[i].layer);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GdsiiFuzz,
                         ::testing::Values(11, 22, 33, 44, 55));

TEST(Gdsii, RejectsTruncatedStream)
{
    std::stringstream ss;
    ss.write("\x00\x06\x00\x02\x02", 5); // truncated header record
    EXPECT_THROW(layout::readGds(ss), std::runtime_error);
}

TEST(Gdsii, RejectsMissingFile)
{
    EXPECT_THROW(layout::readGdsFile("/nonexistent/x.gds"),
                 std::runtime_error);
    Cell cell("c");
    EXPECT_THROW(layout::writeGdsFile("/nonexistent/x.gds", cell),
                 std::runtime_error);
}

} // namespace
