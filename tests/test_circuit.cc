/**
 * @file
 * Tests for the analog circuit substrate: waveforms, dense solver,
 * MOSFET model, transient integration, and both SA topologies.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "circuit/batch.hh"
#include "circuit/dual_sa.hh"
#include "circuit/mismatch.hh"
#include "circuit/netlist.hh"
#include "circuit/sense_amp.hh"
#include "circuit/solver.hh"
#include "circuit/spice.hh"
#include "circuit/vcd.hh"
#include "circuit/waveform.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "common/simd.hh"

namespace
{

using namespace hifi::circuit;

TEST(Pwl, ConstantAndInterpolation)
{
    Pwl w(2.0);
    EXPECT_DOUBLE_EQ(w.value(-1.0), 2.0);
    EXPECT_DOUBLE_EQ(w.value(100.0), 2.0);

    Pwl ramp;
    ramp.point(0.0, 0.0).point(1.0, 10.0);
    EXPECT_DOUBLE_EQ(ramp.value(0.5), 5.0);
    EXPECT_DOUBLE_EQ(ramp.value(-1.0), 0.0);
    EXPECT_DOUBLE_EQ(ramp.value(2.0), 10.0);
}

TEST(Pwl, StepHoldsPreviousValue)
{
    Pwl w(1.0);
    w.step(5.0, 3.0, 1.0);
    EXPECT_DOUBLE_EQ(w.value(4.9), 1.0);
    EXPECT_DOUBLE_EQ(w.value(5.0), 1.0);
    EXPECT_NEAR(w.value(5.5), 2.0, 1e-12);
    EXPECT_DOUBLE_EQ(w.value(6.0), 3.0);
}

TEST(Pwl, RejectsNonMonotonicTime)
{
    Pwl w;
    w.point(1.0, 0.0);
    EXPECT_THROW(w.point(0.5, 1.0), std::invalid_argument);
}

TEST(Trace, CrossingsAndExtremes)
{
    Trace t;
    t.times = {0, 1, 2, 3, 4};
    t.values = {0.0, 0.4, 0.8, 0.4, 0.0};
    EXPECT_DOUBLE_EQ(t.firstCrossUp(0.5), 2.0);
    EXPECT_DOUBLE_EQ(t.firstCrossDown(0.5), 3.0);
    EXPECT_DOUBLE_EQ(t.firstCrossUp(2.0), -1.0);
    EXPECT_DOUBLE_EQ(t.maxValue(), 0.8);
    EXPECT_DOUBLE_EQ(t.minValue(), 0.0);
    EXPECT_DOUBLE_EQ(t.at(2.5), 0.8);
    EXPECT_DOUBLE_EQ(t.final(), 0.0);
}

TEST(SolveDense, SolvesKnownSystem)
{
    std::vector<std::vector<double>> a = {{2, 1}, {1, 3}};
    std::vector<double> b = {5, 10};
    auto x = solveDense(a, b);
    EXPECT_NEAR(x[0], 1.0, 1e-12);
    EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(SolveDense, PivotsZeroDiagonal)
{
    std::vector<std::vector<double>> a = {{0, 1}, {1, 0}};
    std::vector<double> b = {2, 3};
    auto x = solveDense(a, b);
    EXPECT_NEAR(x[0], 3.0, 1e-12);
    EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(SolveDense, ThrowsOnSingular)
{
    std::vector<std::vector<double>> a = {{1, 1}, {2, 2}};
    std::vector<double> b = {1, 2};
    EXPECT_THROW(solveDense(a, b), std::runtime_error);
}

TEST(SparseLu, MatchesDenseOnKnownSystem)
{
    // Same system as SolveDense.SolvesKnownSystem, through the cached
    // symbolic path: analyze once, factor + solve over a value array.
    SparseLu lu;
    lu.analyze(2, {{0, 0}, {0, 1}, {1, 0}, {1, 1}});
    ASSERT_EQ(lu.dim(), 2u);
    std::vector<double> vals(lu.slots(), 0.0);
    vals[static_cast<size_t>(lu.slot(0, 0))] = 2.0;
    vals[static_cast<size_t>(lu.slot(0, 1))] = 1.0;
    vals[static_cast<size_t>(lu.slot(1, 0))] = 1.0;
    vals[static_cast<size_t>(lu.slot(1, 1))] = 3.0;
    ASSERT_TRUE(lu.factor(vals.data()));
    const std::vector<double> b = {5.0, 10.0};
    std::vector<double> x(2, 0.0);
    lu.solve(vals.data(), b.data(), x.data());
    EXPECT_NEAR(x[0], 1.0, 1e-12);
    EXPECT_NEAR(x[1], 3.0, 1e-12);
    EXPECT_EQ(lu.slot(5, 5), -1); // outside the pattern
}

TEST(SparseLu, PivotsStructurallySymmetricOffDiagonal)
{
    // {{0,1},{1,0}}-shaped permutation matrix: no diagonal entries
    // exist, so the static pivot order must fall back to the
    // structurally symmetric off-diagonal pair.
    SparseLu lu;
    lu.analyze(2, {{0, 1}, {1, 0}});
    std::vector<double> vals(lu.slots(), 0.0);
    vals[static_cast<size_t>(lu.slot(0, 1))] = 1.0;
    vals[static_cast<size_t>(lu.slot(1, 0))] = 1.0;
    ASSERT_TRUE(lu.factor(vals.data()));
    const std::vector<double> b = {2.0, 3.0};
    std::vector<double> x(2, 0.0);
    lu.solve(vals.data(), b.data(), x.data());
    EXPECT_NEAR(x[0], 3.0, 1e-12);
    EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(SparseLu, ReportsNumericallySingularMatrix)
{
    // Structurally fine, numerically rank-1: factor() must refuse so
    // the simulator can fall back to the pivoting dense solve.
    SparseLu lu;
    lu.analyze(2, {{0, 0}, {0, 1}, {1, 0}, {1, 1}});
    std::vector<double> vals(lu.slots(), 0.0);
    vals[static_cast<size_t>(lu.slot(0, 0))] = 1.0;
    vals[static_cast<size_t>(lu.slot(0, 1))] = 1.0;
    vals[static_cast<size_t>(lu.slot(1, 0))] = 2.0;
    vals[static_cast<size_t>(lu.slot(1, 1))] = 2.0;
    EXPECT_FALSE(lu.factor(vals.data()));
    EXPECT_THROW(lu.analyze(0, {}), std::invalid_argument);
}

TEST(Netlist, NodeBookkeeping)
{
    Netlist net;
    EXPECT_EQ(net.numNodes(), 1u); // ground
    NodeId a = net.addNode("A");
    EXPECT_EQ(net.node("A"), a);
    EXPECT_EQ(net.nodeName(a), "A");
    EXPECT_THROW(net.node("missing"), std::out_of_range);
    EXPECT_THROW(net.addResistor("R", a, 99, 100.0), std::out_of_range);
    EXPECT_THROW(net.addResistor("R", a, kGround, 0.0),
                 std::invalid_argument);
    EXPECT_THROW(net.addCapacitor("C", a, kGround, -1e-15),
                 std::invalid_argument);
}

TEST(MosfetModel, NmosRegions)
{
    Mosfet m;
    m.model.type = MosType::Nmos;
    m.model.vth = 0.5;
    m.model.kp = 100e-6;
    m.model.lambda = 0.0;
    m.widthNm = 200.0;
    m.lengthNm = 100.0; // W/L = 2

    // Cutoff.
    auto ev = evalMosfet(m, 1.0, 0.3, 0.0);
    EXPECT_NEAR(ev.id, 1e-12, 2e-12);

    // Saturation: Id = 0.5 k (W/L) (vgs - vth)^2.
    ev = evalMosfet(m, 2.0, 1.5, 0.0);
    EXPECT_NEAR(ev.id, 0.5 * 100e-6 * 2 * 1.0, 1e-9);
    EXPECT_NEAR(ev.dIdVg, 100e-6 * 2 * 1.0, 1e-9);

    // Triode: Id = k (W/L) ((vgs-vth) vds - vds^2/2).
    ev = evalMosfet(m, 0.2, 1.5, 0.0);
    EXPECT_NEAR(ev.id, 100e-6 * 2 * (1.0 * 0.2 - 0.02), 1e-9);
}

TEST(MosfetModel, SymmetryUnderSwap)
{
    Mosfet m;
    m.model.vth = 0.5;
    m.model.kp = 100e-6;
    m.model.lambda = 0.0;
    m.widthNm = 100.0;
    m.lengthNm = 50.0;

    // Exchanging drain and source negates the current.
    auto fwd = evalMosfet(m, 1.0, 2.0, 0.2);
    auto rev = evalMosfet(m, 0.2, 2.0, 1.0);
    EXPECT_NEAR(fwd.id, -rev.id, 1e-15);
}

TEST(MosfetModel, PmosMirrorsNmos)
{
    Mosfet n, p;
    n.model = {MosType::Nmos, 0.5, 100e-6, 0.0};
    p.model = {MosType::Pmos, 0.5, 100e-6, 0.0};
    n.widthNm = p.widthNm = 100.0;
    n.lengthNm = p.lengthNm = 50.0;

    auto en = evalMosfet(n, 1.5, 1.2, 0.0);
    // PMOS with all voltages negated: current into drain negated.
    auto ep = evalMosfet(p, -1.5, -1.2, 0.0);
    EXPECT_NEAR(en.id, -ep.id, 1e-15);
}

TEST(MosfetModel, DerivativesMatchFiniteDifference)
{
    Mosfet m;
    m.model = {MosType::Nmos, 0.45, 120e-6, 0.05};
    m.widthNm = 120.0;
    m.lengthNm = 40.0;

    const double vd = 0.7, vg = 1.1, vs = 0.2, h = 1e-7;
    auto ev = evalMosfet(m, vd, vg, vs);
    const double dd = (evalMosfet(m, vd + h, vg, vs).id -
                       evalMosfet(m, vd - h, vg, vs).id) / (2 * h);
    const double dg = (evalMosfet(m, vd, vg + h, vs).id -
                       evalMosfet(m, vd, vg - h, vs).id) / (2 * h);
    const double ds = (evalMosfet(m, vd, vg, vs + h).id -
                       evalMosfet(m, vd, vg, vs - h).id) / (2 * h);
    EXPECT_NEAR(ev.dIdVd, dd, 1e-8);
    EXPECT_NEAR(ev.dIdVg, dg, 1e-8);
    EXPECT_NEAR(ev.dIdVs, ds, 1e-8);
}

TEST(MosfetModel, SwappedDerivativesMatchFiniteDifference)
{
    Mosfet m;
    m.model = {MosType::Nmos, 0.45, 120e-6, 0.05};
    m.widthNm = 120.0;
    m.lengthNm = 40.0;

    // vd < vs: internally swapped.
    const double vd = 0.1, vg = 1.4, vs = 0.9, h = 1e-7;
    auto ev = evalMosfet(m, vd, vg, vs);
    EXPECT_LT(ev.id, 0.0);
    const double dd = (evalMosfet(m, vd + h, vg, vs).id -
                       evalMosfet(m, vd - h, vg, vs).id) / (2 * h);
    const double ds = (evalMosfet(m, vd, vg, vs + h).id -
                       evalMosfet(m, vd, vg, vs - h).id) / (2 * h);
    EXPECT_NEAR(ev.dIdVd, dd, 1e-8);
    EXPECT_NEAR(ev.dIdVs, ds, 1e-8);
}

TEST(Transient, RcChargingMatchesAnalytic)
{
    // 1 kOhm / 1 pF driven by a 1 V step: v(t) = 1 - exp(-t/RC).
    Netlist net;
    NodeId in = net.addNode("IN");
    NodeId out = net.addNode("OUT");
    net.addVSource("Vin", in, kGround, Pwl(1.0));
    net.addResistor("R", in, out, 1e3);
    net.addCapacitor("C", out, kGround, 1e-12, 0.0);

    TranParams tp;
    tp.tstop = 5e-9;
    tp.dt = 1e-12;
    Simulator sim(net);
    auto res = sim.run(tp);
    const Trace &v = res.trace("OUT");

    const double rc = 1e3 * 1e-12;
    for (double t : {1e-9, 2e-9, 3e-9}) {
        const double expect = 1.0 - std::exp(-t / rc);
        EXPECT_NEAR(v.at(t), expect, 0.01);
    }
    EXPECT_EQ(res.nonConvergedSteps, 0u);
}

TEST(Transient, InitialConditionRespected)
{
    Netlist net;
    NodeId a = net.addNode("A");
    net.addCapacitor("C", a, kGround, 1e-12, 0.75);
    net.addResistor("Rleak", a, kGround, 1e9);

    TranParams tp;
    tp.tstop = 1e-10;
    tp.dt = 1e-12;
    Simulator sim(net);
    auto res = sim.run(tp);
    EXPECT_NEAR(res.trace("A").values.front(), 0.75, 0.01);
}

TEST(Transient, VoltageDividerDc)
{
    Netlist net;
    NodeId in = net.addNode("IN");
    NodeId mid = net.addNode("MID");
    net.addVSource("V", in, kGround, Pwl(3.0));
    net.addResistor("R1", in, mid, 2e3);
    net.addResistor("R2", mid, kGround, 1e3);

    TranParams tp;
    tp.tstop = 1e-10;
    tp.dt = 1e-11;
    Simulator sim(net);
    auto res = sim.run(tp);
    EXPECT_NEAR(res.trace("MID").final(), 1.0, 1e-6);
}

TEST(Transient, NmosInverterPullsDown)
{
    // NMOS with resistive load: gate high -> output low.
    Netlist net;
    NodeId vdd = net.addNode("VDD");
    NodeId g = net.addNode("G");
    NodeId d = net.addNode("D");
    net.addVSource("Vdd", vdd, kGround, Pwl(1.1));
    Pwl gate(0.0);
    gate.step(1e-9, 1.1, 1e-10);
    net.addVSource("Vg", g, kGround, std::move(gate));
    net.addResistor("Rload", vdd, d, 50e3);
    net.addCapacitor("Cload", d, kGround, 1e-15, 1.1);

    TranParams tp;
    tp.tstop = 5e-9;
    tp.dt = 5e-12;
    Mosfet m;
    m.name = "M1";
    m.drain = d;
    m.gate = g;
    m.source = kGround;
    m.widthNm = 200;
    m.lengthNm = 40;
    net.addMosfet(m);

    Simulator sim(net);
    auto res = sim.run(tp);
    EXPECT_NEAR(res.trace("D").at(0.9e-9), 1.1, 0.05); // off: pulled up
    EXPECT_LT(res.trace("D").final(), 0.2);            // on: pulled down
}

TEST(Transient, BranchCurrentsRecordedAndOhmic)
{
    // 1 V source across a 1 kOhm resistor: i = 1 mA out of the source.
    Netlist net;
    NodeId a = net.addNode("A");
    net.addVSource("Vs", a, kGround, Pwl(1.0));
    net.addResistor("R", a, kGround, 1e3);
    TranParams tp;
    tp.tstop = 1e-10;
    tp.dt = 1e-11;
    const auto res = Simulator(net).run(tp);
    EXPECT_NEAR(res.trace("I(Vs)").final(), 1e-3, 1e-9);
}

TEST(Transient, SourceEnergyMatchesRcTheory)
{
    // Charging C through R from a step source: the source delivers
    // C V^2 total (half stored, half dissipated).
    Netlist net;
    NodeId in = net.addNode("VS");
    NodeId out = net.addNode("OUT");
    net.addVSource("Vvs", in, kGround, Pwl(1.0));
    net.addResistor("R", in, out, 1e3);
    net.addCapacitor("C", out, kGround, 1e-12, 0.0);
    TranParams tp;
    tp.tstop = 10e-9; // 10 tau: fully charged
    tp.dt = 5e-12;
    const auto res = Simulator(net).run(tp);
    const double e = res.sourceEnergy("Vvs");
    EXPECT_NEAR(e, 1e-12, 0.1e-12); // C V^2 = 1 pJ
}

TEST(Transient, SourceEnergyResolvesCaseInsensitiveNames)
{
    // The two resolution rules the SA testbenches rely on: "Vpre"
    // matches node "VPRE" by the full upper-cased name, and "Vsan"
    // matches node "SAN" by the name without its leading 'V'.
    Netlist net;
    NodeId vpre = net.addNode("VPRE");
    NodeId san = net.addNode("SAN");
    NodeId orphan = net.addNode("A");
    net.addVSource("Vpre", vpre, kGround, Pwl(1.0));
    net.addVSource("Vsan", san, kGround, Pwl(0.5));
    net.addVSource("Vzz", orphan, kGround, Pwl(0.0));
    net.addResistor("R1", vpre, kGround, 1e3);
    net.addResistor("R2", san, kGround, 1e3);

    TranParams tp;
    tp.tstop = 1e-9;
    tp.dt = 1e-10;
    const auto res = Simulator(net).run(tp);

    // Purely resistive: E = (V^2 / R) * tstop.
    EXPECT_NEAR(res.sourceEnergy("Vpre"), 1e-12, 1e-14);
    EXPECT_NEAR(res.sourceEnergy("Vsan"), 0.25e-12, 1e-14);

    // "Vzz" has a current trace but no node named "VZZ" or "ZZ": the
    // voltage-trace resolution must fail loudly, and an unknown source
    // has no current trace at all.
    EXPECT_THROW(res.sourceEnergy("Vzz"), std::out_of_range);
    EXPECT_THROW(res.sourceEnergy("Vmissing"), std::out_of_range);
}

TEST(SenseAmp, OcsaActivationCostsMoreEnergy)
{
    // The OCSA's extra phases draw extra charge from the rails; its
    // activation energy exceeds the classic SA's (the "energy and
    // power overheads" the paper says I5 papers ignore).
    auto energy = [](SaTopology topo) {
        SaParams p;
        p.topology = topo;
        const SaRun run = simulateActivation(p);
        return run.tran.sourceEnergy("Vsan") +
            run.tran.sourceEnergy("Vsap") +
            run.tran.sourceEnergy("Vpre") +
            run.tran.sourceEnergy("Vwl");
    };
    const double classic = energy(SaTopology::Classic);
    const double ocsa = energy(SaTopology::OffsetCancellation);
    EXPECT_GT(classic, 0.0);
    EXPECT_GT(ocsa, classic);
}

// --- Random-network property tests -----------------------------------

TEST(Transient, RandomResistorNetworksObeyKcl)
{
    // Random ladder networks: the DC solution must satisfy KCL at
    // every internal node (sum of branch currents < 1 nA).
    hifi::common::Rng rng(31);
    for (int trial = 0; trial < 8; ++trial) {
        Netlist net;
        const int n = 4 + static_cast<int>(rng.below(5));
        std::vector<NodeId> nodes;
        nodes.push_back(net.addNode("SRC"));
        for (int i = 1; i < n; ++i)
            nodes.push_back(net.addNode("N" + std::to_string(i)));
        net.addVSource("V", nodes[0], kGround, Pwl(1.0));

        struct Edge
        {
            NodeId a, b;
            double g;
        };
        std::vector<Edge> edges;
        for (int i = 1; i < n; ++i) {
            // Connect every node to a random earlier node and ground.
            const auto j = rng.below(static_cast<uint64_t>(i));
            const double r1 = rng.uniform(1e3, 1e5);
            const double r2 = rng.uniform(1e3, 1e5);
            net.addResistor("Ra" + std::to_string(i), nodes[i],
                            nodes[j], r1);
            net.addResistor("Rb" + std::to_string(i), nodes[i],
                            kGround, r2);
            edges.push_back({nodes[i], nodes[j], 1.0 / r1});
            edges.push_back({nodes[i], kGround, 1.0 / r2});
        }

        TranParams tp;
        tp.tstop = 1e-10;
        tp.dt = 1e-11;
        tp.gmin = 0.0;
        const auto res = Simulator(net).run(tp);

        std::vector<double> v(static_cast<size_t>(n), 0.0);
        for (int i = 0; i < n; ++i)
            v[static_cast<size_t>(i)] =
                res.trace(i == 0 ? "SRC" : "N" + std::to_string(i))
                    .final();
        for (int i = 1; i < n; ++i) {
            double kcl = 0.0;
            for (const auto &e : edges) {
                const double va = v[static_cast<size_t>(e.a - 1)];
                const double vb =
                    e.b == kGround ? 0.0
                                   : v[static_cast<size_t>(e.b - 1)];
                if (e.a == nodes[i])
                    kcl += (va - vb) * e.g;
                else if (e.b == nodes[i])
                    kcl -= (va - vb) * e.g;
            }
            EXPECT_LT(std::abs(kcl), 1e-9)
                << "trial " << trial << " node " << i;
        }
    }
}

TEST(Transient, SuperpositionHoldsOnLinearNetworks)
{
    // v(a V) + v(b V) == v((a+b) V) for a purely linear network.
    auto solve = [](double volts) {
        Netlist net;
        NodeId in = net.addNode("IN");
        NodeId mid = net.addNode("MID");
        NodeId out = net.addNode("OUT");
        net.addVSource("V", in, kGround, Pwl(volts));
        net.addResistor("R1", in, mid, 2.2e3);
        net.addResistor("R2", mid, kGround, 4.7e3);
        net.addResistor("R3", mid, out, 1.1e3);
        net.addCapacitor("C", out, kGround, 2e-12, 0.0);
        TranParams tp;
        tp.tstop = 50e-9; // several RC constants: settle to DC
        tp.dt = 50e-12;
        return Simulator(net).run(tp).trace("OUT").final();
    };
    EXPECT_NEAR(solve(0.4) + solve(0.7), solve(1.1), 1e-6);
}

TEST(Transient, EnergyDissipationIsNonNegative)
{
    // A discharging RC never goes below zero or above its initial
    // voltage (passivity).
    Netlist net;
    NodeId a = net.addNode("A");
    net.addCapacitor("C", a, kGround, 1e-12, 0.9);
    net.addResistor("R", a, kGround, 5e3);
    TranParams tp;
    tp.tstop = 30e-9;
    tp.dt = 20e-12;
    const auto res = Simulator(net).run(tp);
    const auto &v = res.trace("A");
    for (double value : v.values) {
        EXPECT_GE(value, -1e-6);
        EXPECT_LE(value, 0.9 + 1e-3);
    }
    // And it actually discharges: ~5 tau gone.
    EXPECT_LT(v.final(), 0.01);
}

// --- Dense vs sparse engine agreement ------------------------------

/**
 * Random mixed R/C/V/MOSFET netlist: two rails (a DC VDD and a ramp),
 * a connected resistive mesh with grounded caps carrying random
 * initial conditions, and a handful of inverter-style transistors of
 * both polarities.  Every topology decision comes from the seeded
 * counter RNG, so each seed is one reproducible circuit.
 */
Netlist
randomMixedNetlist(uint64_t seed)
{
    hifi::common::Rng rng(seed);
    Netlist net;
    const NodeId vdd = net.addNode("VDD");
    const NodeId in = net.addNode("IN");
    net.addVSource("Vdd", vdd, kGround, Pwl(1.1));
    Pwl ramp;
    ramp.point(0.0, 0.0).point(4e-9, 1.1);
    net.addVSource("Vin", in, kGround, std::move(ramp));

    std::vector<NodeId> nodes = {vdd, in};
    const int n = 6 + static_cast<int>(rng.below(5));
    for (int i = 0; i < n; ++i) {
        const NodeId node = net.addNode("N" + std::to_string(i));
        const NodeId peer = nodes[rng.below(nodes.size())];
        net.addResistor("Rp" + std::to_string(i), node, peer,
                        rng.uniform(1e3, 2e4));
        if (rng.below(2) == 0)
            net.addCapacitor("C" + std::to_string(i), node, kGround,
                             rng.uniform(1e-14, 1e-13),
                             rng.uniform(0.0, 1.1));
        else
            net.addResistor("Rg" + std::to_string(i), node, kGround,
                            rng.uniform(1e3, 2e4));
        nodes.push_back(node);
    }

    const size_t internal = nodes.size() - 2;
    const int fets = 2 + static_cast<int>(rng.below(3));
    for (int i = 0; i < fets; ++i) {
        Mosfet m;
        m.name = "M" + std::to_string(i);
        m.drain = nodes[2 + rng.below(internal)];
        m.gate = rng.below(2) == 0 ? in : nodes[2 + rng.below(internal)];
        if (rng.below(2) == 0) {
            m.model.type = MosType::Nmos;
            m.source = kGround;
        } else {
            m.model.type = MosType::Pmos;
            m.source = vdd;
        }
        m.widthNm = rng.uniform(80.0, 240.0);
        m.lengthNm = 40.0;
        net.addMosfet(m);
    }
    return net;
}

TEST(Transient, SparseAndDenseEnginesAgreeOnRandomNetlists)
{
    // The cached-symbolic sparse LU and the pivoting dense solve are
    // different factorizations of the same stamped matrix: with a
    // tight Newton tolerance every node voltage and branch current
    // must match to 1e-9 at every step, for both integrators.
    for (uint64_t seed : {11u, 23u, 42u}) {
        const Netlist net = randomMixedNetlist(seed);
        for (auto integ : {Integrator::BackwardEuler,
                           Integrator::Trapezoidal}) {
            TranParams tp;
            tp.tstop = 4e-9;
            tp.dt = 20e-12;
            tp.tolVolts = 1e-9;
            tp.integrator = integ;

            tp.solver = LinearSolver::Dense;
            const auto dense = Simulator(net).run(tp);
            tp.solver = LinearSolver::Sparse;
            const auto sparse = Simulator(net).run(tp);

            EXPECT_EQ(dense.nonConvergedSteps, 0u);
            EXPECT_EQ(sparse.nonConvergedSteps, 0u);
            ASSERT_EQ(dense.traces.size(), sparse.traces.size());
            for (const auto &[name, dtr] : dense.traces) {
                const Trace &str = sparse.trace(name);
                ASSERT_EQ(dtr.values.size(), str.values.size());
                for (size_t k = 0; k < dtr.values.size(); ++k)
                    ASSERT_NEAR(dtr.values[k], str.values[k], 1e-9)
                        << name << " seed " << seed << " step " << k;
            }
        }
    }
}

TEST(Transient, NonConvergedStepsMatchAcrossEngines)
{
    // An NMOS inverter switching under an absurdly small Newton
    // budget: some steps must fail to converge, and both engines must
    // report the same count (the per-step iteration schedule is then
    // pinned by maxNewton, keeping them in lockstep) while still
    // agreeing on the voltages.
    Netlist net;
    NodeId vdd = net.addNode("VDD");
    NodeId g = net.addNode("G");
    NodeId d = net.addNode("D");
    net.addVSource("Vdd", vdd, kGround, Pwl(1.1));
    Pwl gate(0.0);
    gate.step(1e-9, 1.1, 2e-10);
    net.addVSource("Vg", g, kGround, std::move(gate));
    net.addResistor("Rload", vdd, d, 50e3);
    net.addCapacitor("Cload", d, kGround, 1e-15, 1.1);
    Mosfet m;
    m.name = "M1";
    m.drain = d;
    m.gate = g;
    m.source = kGround;
    m.widthNm = 200;
    m.lengthNm = 40;
    net.addMosfet(m);

    TranParams tp;
    tp.tstop = 5e-9;
    tp.dt = 5e-12;
    tp.maxNewton = 2;

    tp.solver = LinearSolver::Dense;
    const auto dense = Simulator(net).run(tp);
    tp.solver = LinearSolver::Sparse;
    const auto sparse = Simulator(net).run(tp);

    EXPECT_GT(dense.nonConvergedSteps, 0u);
    EXPECT_EQ(dense.nonConvergedSteps, sparse.nonConvergedSteps);
    EXPECT_EQ(dense.totalNewtonIterations,
              sparse.totalNewtonIterations);
    for (const auto &[name, dtr] : dense.traces) {
        const Trace &str = sparse.trace(name);
        for (size_t k = 0; k < dtr.values.size(); ++k)
            ASSERT_NEAR(dtr.values[k], str.values[k], 1e-9)
                << name << " step " << k;
    }
}

TEST(Transient, RepeatedRunsOnOneSimulatorAreBitwiseIdentical)
{
    // The reusable workspace must be fully re-initialized by run():
    // back-to-back runs of one Simulator are bitwise identical.
    SaParams p;
    SaTestbench testbench(p);
    const SaRun a = testbench.simulate();
    const SaRun b = testbench.simulate();
    EXPECT_EQ(a.tran.totalNewtonIterations,
              b.tran.totalNewtonIterations);
    ASSERT_EQ(a.tran.traces.size(), b.tran.traces.size());
    for (const auto &[name, tra] : a.tran.traces) {
        const Trace &trb = b.tran.trace(name);
        ASSERT_EQ(tra.values.size(), trb.values.size());
        for (size_t k = 0; k < tra.values.size(); ++k)
            ASSERT_EQ(tra.values[k], trb.values[k])
                << name << " step " << k;
    }
}

// --- Sense amplifier behaviour -------------------------------------

class SaTopologyTest
    : public ::testing::TestWithParam<std::tuple<SaTopology, bool>>
{
};

TEST_P(SaTopologyTest, LatchesStoredBitAndRestoresCell)
{
    const auto [topology, store_one] = GetParam();
    SaParams p;
    p.topology = topology;
    p.storeOne = store_one;

    const SaRun run = simulateActivation(p);
    EXPECT_TRUE(run.latchedCorrectly)
        << saTopologyName(topology) << " storing "
        << (store_one ? 1 : 0)
        << " BL=" << run.blAtRestore << " BLB=" << run.blbAtRestore;

    // Restore: the cell must be written back toward the full rail.
    if (store_one)
        EXPECT_GT(run.cellAtRestore, 0.8 * p.vdd);
    else
        EXPECT_LT(run.cellAtRestore, 0.2 * p.vdd);

    // Rail separation develops.
    EXPECT_GT(run.tSense, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, SaTopologyTest,
    ::testing::Combine(::testing::Values(SaTopology::Classic,
                                         SaTopology::OffsetCancellation),
                       ::testing::Bool()));

TEST(SenseAmp, ChargeSharingSignalSign)
{
    SaParams p;
    p.topology = SaTopology::Classic;
    p.storeOne = true;
    const SaRun one = simulateActivation(p);
    EXPECT_GT(one.signalBeforeLatch, 0.01);

    p.storeOne = false;
    const SaRun zero = simulateActivation(p);
    EXPECT_LT(zero.signalBeforeLatch, -0.01);
}

TEST(SenseAmp, ChargeSharingMagnitudeMatchesCapacitorDivider)
{
    // dV = (Vcell - Vbl) * Cs / (Cs + Cbl), within tolerance for the
    // finite wordline resistance path.
    SaParams p;
    p.topology = SaTopology::Classic;
    p.storeOne = true;
    const double expected = (p.vdd - p.vpre) * p.cellCapF /
        (p.cellCapF + p.blCapF + 2e-15);
    const SaRun run = simulateActivation(p);
    EXPECT_NEAR(run.signalBeforeLatch, expected, 0.25 * expected);
}

TEST(SenseAmp, OcsaDelaysChargeSharing)
{
    // Section VI-D: on OCSA chips, charge sharing happens only after
    // the offset-cancellation phase.
    SaParams p;
    p.topology = SaTopology::OffsetCancellation;
    SaSchedule sched;
    buildSaTestbench(p, sched);
    EXPECT_GT(sched.tChargeShare, sched.tOcEnd);
    EXPECT_GT(sched.tOcEnd, sched.tOcStart);
    EXPECT_GT(sched.tPreSense, sched.tChargeShare);

    SaParams c;
    c.topology = SaTopology::Classic;
    SaSchedule classic_sched;
    buildSaTestbench(c, classic_sched);
    EXPECT_LT(classic_sched.tChargeShare - classic_sched.tActivate,
              sched.tChargeShare - sched.tActivate);
}

TEST(SenseAmp, ClassicFailsUnderLargeMismatchOcsaSurvives)
{
    // The headline OCSA property: a deliberate latch asymmetry well
    // above the charge-sharing signal flips the classic SA but not
    // the offset-cancelling one.
    SaParams p;
    p.storeOne = true;
    p.vthMismatch = -0.30; // Mn2 much stronger: pulls BL low, wrongly

    p.topology = SaTopology::Classic;
    const SaRun classic = simulateActivation(p);
    EXPECT_FALSE(classic.latchedCorrectly);

    p.topology = SaTopology::OffsetCancellation;
    const SaRun ocsa = simulateActivation(p);
    EXPECT_TRUE(ocsa.latchedCorrectly);
}

TEST(SenseAmp, PrechargeReturnsBitlinesToVpre)
{
    SaParams p;
    p.topology = SaTopology::Classic;
    const SaRun run = simulateActivation(p);
    const double t_end = run.schedule.tEnd;
    EXPECT_NEAR(run.tran.trace("BL").at(t_end), p.vpre, 0.05);
    EXPECT_NEAR(run.tran.trace("BLB").at(t_end), p.vpre, 0.05);
}

TEST(SenseAmp, OcsaEqualizesThroughIsoPlusOc)
{
    // After the PRE command, with no standalone equalizer, BL and BLB
    // must still converge (via ISO + OC).
    SaParams p;
    p.topology = SaTopology::OffsetCancellation;
    const SaRun run = simulateActivation(p);
    const double t_end = run.schedule.tEnd;
    const double bl = run.tran.trace("BL").at(t_end);
    const double blb = run.tran.trace("BLB").at(t_end);
    EXPECT_NEAR(bl, blb, 0.05);
}

TEST(Transient, TrapezoidalMoreAccurateThanBackwardEuler)
{
    // RC charge curve at a coarse step: trapezoidal (2nd order) must
    // beat backward Euler (1st order).
    auto build = []() {
        Netlist net;
        NodeId in = net.addNode("IN");
        NodeId out = net.addNode("OUT");
        net.addVSource("Vin", in, kGround, Pwl(1.0));
        net.addResistor("R", in, out, 1e3);
        net.addCapacitor("C", out, kGround, 1e-12, 0.0);
        return net;
    };
    const double rc = 1e-9;
    const double t_probe = 1e-9;
    const double exact = 1.0 - std::exp(-t_probe / rc);

    TranParams tp;
    tp.tstop = 2e-9;
    tp.dt = 100e-12; // deliberately coarse
    Netlist net = build();

    tp.integrator = Integrator::BackwardEuler;
    const double be =
        Simulator(net).run(tp).trace("OUT").at(t_probe);
    tp.integrator = Integrator::Trapezoidal;
    const double tr =
        Simulator(net).run(tp).trace("OUT").at(t_probe);

    EXPECT_LT(std::abs(tr - exact), std::abs(be - exact));
    EXPECT_NEAR(tr, exact, 0.02);
}

TEST(Transient, TrapezoidalSaActivationStillLatches)
{
    SaParams p;
    p.topology = SaTopology::OffsetCancellation;
    TranParams tp = defaultSaTran();
    tp.integrator = Integrator::Trapezoidal;
    const SaRun run = simulateActivation(p, tp);
    EXPECT_TRUE(run.latchedCorrectly);
}

class ColumnReadTest
    : public ::testing::TestWithParam<std::tuple<SaTopology, bool>>
{
};

TEST_P(ColumnReadTest, ReadReturnsStoredBit)
{
    const auto [topology, stored] = GetParam();
    SaParams p;
    p.topology = topology;
    p.storeOne = stored;
    p.columnOp = ColumnOp::Read;
    const SaRun run = simulateActivation(p);
    EXPECT_EQ(run.readBit, stored ? 1 : 0);
    EXPECT_TRUE(run.latchedCorrectly); // read is non-destructive
    EXPECT_GT(run.schedule.tColStart, run.schedule.tLatch);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ColumnReadTest,
    ::testing::Combine(::testing::Values(SaTopology::Classic,
                                         SaTopology::OffsetCancellation),
                       ::testing::Bool()));

class ColumnWriteTest
    : public ::testing::TestWithParam<std::tuple<bool, bool>>
{
};

TEST_P(ColumnWriteTest, WriteOverpowersLatchAndUpdatesCell)
{
    const auto [stored, written] = GetParam();
    SaParams p;
    p.topology = SaTopology::Classic;
    p.storeOne = stored;
    p.columnOp = ColumnOp::Write;
    p.writeBit = written;
    const SaRun run = simulateActivation(p);
    EXPECT_TRUE(run.writeSucceeded)
        << "stored " << stored << " wrote " << written << " cell "
        << run.cellAtRestore;
    if (written)
        EXPECT_GT(run.cellAtRestore, 0.8 * p.vdd);
    else
        EXPECT_LT(run.cellAtRestore, 0.2 * p.vdd);
}

INSTANTIATE_TEST_SUITE_P(Cases, ColumnWriteTest,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Bool()));

TEST(MultiRow, TwoEqualCellsDoubleTheSignal)
{
    // ComputeDRAM-style simultaneous two-row activation
    // (Section VI-D): agreeing cells double the charge-sharing
    // signal; disagreeing cells nearly cancel.
    SaParams one;
    one.storeOne = true;
    const double single =
        simulateActivation(one).signalBeforeLatch;

    SaParams two = one;
    two.extraCells = {true};
    const double agree = simulateActivation(two).signalBeforeLatch;
    // Capacitive divider: dV = (Vcell - Vpre) 2Cs / (2Cs + Cb).
    const double expected = (one.vdd - one.vpre) * 2.0 *
        one.cellCapF / (2.0 * one.cellCapF + one.blCapF);
    EXPECT_NEAR(agree, expected, 0.15 * expected);
    EXPECT_GT(agree, 1.5 * single);

    two.extraCells = {false};
    const double conflict =
        simulateActivation(two).signalBeforeLatch;
    EXPECT_LT(std::abs(conflict), 0.1 * single);
}

TEST(MultiRow, OcsaBiasesMixedCharge)
{
    // On OCSA chips the bitlines sit at the diode-connected level
    // (below Vpre) when charge sharing starts, so a mixed multi-row
    // activation no longer cancels - the Section VI-D warning for
    // majority-based row operations.
    SaParams p;
    p.storeOne = true;
    p.extraCells = {false};

    p.topology = SaTopology::Classic;
    const double classic =
        simulateActivation(p).signalBeforeLatch;
    p.topology = SaTopology::OffsetCancellation;
    const double ocsa = simulateActivation(p).signalBeforeLatch;

    EXPECT_LT(std::abs(classic), 0.005);
    EXPECT_GT(ocsa, 0.010); // biased upward
}

TEST(MultiRow, ThreeRowMajority)
{
    // 2-vs-1 majority keeps a solid classic signal.
    SaParams p;
    p.storeOne = true;
    p.extraCells = {true, false};
    const SaRun run = simulateActivation(p);
    EXPECT_GT(run.signalBeforeLatch, 0.03);
    EXPECT_GT(run.blAtRestore, run.blbAtRestore);
}

TEST(DualSa, SharedControlDisturbsTheIdleSa)
{
    // Recommendation R2: control lines are shared across the region,
    // so latching SA A inevitably latches (a garbage value into)
    // rowless SA B too - per-SA control does not exist.
    DualSaParams d;
    const DualSaRun run = simulateSharedControl(d);
    EXPECT_TRUE(run.aLatchedCorrectly);
    EXPECT_TRUE(run.bDisturbed);
    EXPECT_GT(run.bSeparation, 0.5 * d.base.vdd);
}

TEST(DualSa, BothRowsSelectedBothLatch)
{
    DualSaParams d;
    d.activateOnlyA = false; // SA B also has a selected row
    d.bitA = true;
    d.bitB = false;
    const DualSaRun run = simulateSharedControl(d);
    EXPECT_TRUE(run.aLatchedCorrectly);
    const double t = run.schedule.tRestoreEnd - 2e-11;
    const double b_diff = run.tran.trace("B_BL").at(t) -
        run.tran.trace("B_BLB").at(t);
    EXPECT_LT(b_diff, -0.5 * d.base.vdd); // B latched its own '0'
}

TEST(Mismatch, VthSigmaFollowsPelgrom)
{
    EXPECT_NEAR(vthSigma(100, 100, 3.0), 0.03, 1e-12);
    // Quadrupling the area halves the sigma.
    EXPECT_NEAR(vthSigma(200, 200, 3.0), 0.015, 1e-12);
    EXPECT_THROW(vthSigma(0, 10, 3.0), std::invalid_argument);
}

TEST(Mismatch, LargerDevicesFailLess)
{
    MismatchParams mc;
    mc.trials = 12;
    mc.seed = 7;
    mc.avtVnm = 9.0; // exaggerated to provoke failures cheaply

    TranParams tp = defaultSaTran();
    tp.dt = 50e-12;

    SaParams small;
    small.topology = SaTopology::Classic;
    small.sizing.nsaW = 60;
    small.sizing.nsaL = 30;
    const YieldResult tight = sensingYield(small, mc, tp);

    SaParams big = small;
    big.sizing.nsaW = 480;
    big.sizing.nsaL = 60;
    const YieldResult relaxed = sensingYield(big, mc, tp);

    EXPECT_LE(relaxed.failures, tight.failures);
}

/**
 * The yield must be a pure function of the Monte-Carlo seed: each
 * trial samples the counter-seeded stream (seed, trial), so neither
 * the trial count chunking nor the worker thread count may leak into
 * the result.  Sweep all three knobs and compare against a 1-thread
 * reference at the same {trials, seed}.
 */
class SensingYieldSweep
    : public ::testing::TestWithParam<
          std::tuple<size_t, size_t, uint64_t>>
{
};

TEST_P(SensingYieldSweep, YieldIsPureFunctionOfSeed)
{
    const auto [trials, threads, seed] = GetParam();

    SaParams base;
    base.topology = SaTopology::Classic;
    MismatchParams mc;
    mc.trials = trials;
    mc.seed = seed;
    mc.avtVnm = 9.0;
    TranParams tp = defaultSaTran();
    tp.dt = 50e-12;

    YieldResult reference;
    {
        hifi::common::ScopedThreads serial(1);
        reference = sensingYield(base, mc, tp);
    }
    EXPECT_EQ(reference.trials, trials);

    hifi::common::ScopedThreads scoped(threads);
    const YieldResult run = sensingYield(base, mc, tp);
    EXPECT_EQ(run.trials, reference.trials);
    EXPECT_EQ(run.failures, reference.failures);
    // Exact: partials combine in chunk-index order.
    EXPECT_EQ(run.meanSignal, reference.meanSignal);

    // Prefix property of counter seeding: the first `trials` trials
    // of a longer run are the same trials, so failures cannot shrink
    // when trials grow at the same seed.  (Checked once per
    // {trials, seed}; it is thread-count independent by the above.)
    if (threads == 1) {
        MismatchParams more = mc;
        more.trials = trials + 3;
        const YieldResult extended = sensingYield(base, more, tp);
        EXPECT_GE(extended.failures, run.failures);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SensingYieldSweep,
    ::testing::Combine(::testing::Values<size_t>(6, 11),
                       ::testing::Values<size_t>(1, 2, 8),
                       ::testing::Values<uint64_t>(7, 99)));

TEST(Vcd, ExportsRealVariables)
{
    SaParams p;
    p.tRestore = 2e-9;
    p.tPrecharge = 1e-9;
    const SaRun run = simulateActivation(p);
    std::ostringstream ss;
    writeVcd(ss, run.tran);
    const std::string vcd = ss.str();
    EXPECT_NE(vcd.find("$timescale 1ps $end"), std::string::npos);
    EXPECT_NE(vcd.find("$var real 64"), std::string::npos);
    EXPECT_NE(vcd.find(" BL $end"), std::string::npos);
    EXPECT_NE(vcd.find(" SAN $end"), std::string::npos);
    // Value-change records exist.
    EXPECT_NE(vcd.find("\n#0\n"), std::string::npos);
    EXPECT_NE(vcd.find("\nr"), std::string::npos);
    TranResult empty;
    EXPECT_THROW(writeVcd(ss, empty), std::invalid_argument);
}

TEST(Spice, DeckContainsModelsDevicesAndAnalysis)
{
    SaParams p;
    p.topology = SaTopology::OffsetCancellation;
    SaSchedule schedule;
    const Netlist net = buildSaTestbench(p, schedule);
    std::ostringstream ss;
    writeSpice(ss, net, "test deck", schedule.tEnd, 50);
    const std::string deck = ss.str();
    EXPECT_NE(deck.find(".MODEL NSA NMOS (LEVEL=1"),
              std::string::npos);
    EXPECT_NE(deck.find(".MODEL PSA PMOS (LEVEL=1"),
              std::string::npos);
    EXPECT_NE(deck.find("MMn1 SBL BLB SAN SAN NSA"),
              std::string::npos);
    EXPECT_NE(deck.find("MMiso1 BL ISO SBL"), std::string::npos);
    EXPECT_NE(deck.find("CCcell CN 0"), std::string::npos);
    EXPECT_NE(deck.find("PWL("), std::string::npos);
    EXPECT_NE(deck.find(".TRAN"), std::string::npos);
    EXPECT_NE(deck.find(".END"), std::string::npos);
    EXPECT_THROW(writeSpice(ss, net, "x", 1e-9, 1),
                 std::invalid_argument);
}

TEST(Spice, FileExportForBothTopologies)
{
    for (auto topo : {SaTopology::Classic,
                      SaTopology::OffsetCancellation}) {
        SaParams p;
        p.topology = topo;
        const std::string path = std::string("/tmp/hifi_sa_") +
            (topo == SaTopology::Classic ? "classic" : "ocsa") +
            ".sp";
        writeSaSpiceFile(path, p);
        std::ifstream in(path);
        std::string all((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
        EXPECT_NE(all.find("sense-amplifier testbench"),
                  std::string::npos);
        if (topo == SaTopology::OffsetCancellation)
            EXPECT_NE(all.find("MMoc1"), std::string::npos);
        else
            EXPECT_NE(all.find("MMeq"), std::string::npos);
    }
}

// ---- BatchSimulator: lockstep lanes vs the per-trial scalar engine --

/// Every trace, bit for bit, plus the Newton bookkeeping.
void
expectBitwiseEqual(const TranResult &batch, const TranResult &scalar,
                   const std::string &what)
{
    ASSERT_EQ(batch.traces.size(), scalar.traces.size()) << what;
    for (const auto &[name, tr] : scalar.traces) {
        const auto it = batch.traces.find(name);
        ASSERT_NE(it, batch.traces.end()) << what << " " << name;
        ASSERT_EQ(it->second.values.size(), tr.values.size())
            << what << " " << name;
        EXPECT_EQ(std::memcmp(it->second.values.data(),
                              tr.values.data(),
                              tr.values.size() * sizeof(double)),
                  0)
            << what << ": trace " << name << " bits differ";
    }
    EXPECT_EQ(batch.nonConvergedSteps, scalar.nonConvergedSteps)
        << what;
    EXPECT_EQ(batch.totalNewtonIterations,
              scalar.totalNewtonIterations)
        << what;
}

/// Run `lanes` mismatch trials through BatchSimulator and through one
/// scalar Simulator per lane (same per-lane vthDelta patches), and
/// require bitwise-identical results.
void
runBatchVsScalar(const Netlist &net, const TranParams &tp,
                 size_t maxLanes, size_t lanes,
                 const std::string &what)
{
    BatchSimulator sim(net, maxLanes);
    std::vector<Netlist> patched(lanes, net);
    for (size_t l = 0; l < lanes; ++l) {
        hifi::common::Rng rng(99, l);
        for (size_t mi = 0; mi < net.mosfets().size(); ++mi) {
            const double delta = rng.gaussian(0.0, 0.03);
            sim.setVthDelta(l, mi, delta);
            patched[l].mosfet(mi).vthDelta = delta;
        }
    }
    const std::vector<TranResult> got = sim.run(tp, lanes);
    ASSERT_EQ(got.size(), lanes) << what;
    for (size_t l = 0; l < lanes; ++l) {
        const TranResult ref = Simulator(patched[l]).run(tp);
        expectBitwiseEqual(got[l], ref,
                           what + " lane " + std::to_string(l));
    }
}

TEST(Batch, LanesMatchScalarBitwiseAcrossTopologies)
{
    for (const SaTopology topo :
         {SaTopology::Classic, SaTopology::OffsetCancellation}) {
        SaParams p;
        p.topology = topo;
        SaSchedule sched;
        const Netlist net = buildSaTestbench(p, sched);
        TranParams tp = defaultSaTran();
        tp.dt = 50e-12;
        tp.tstop = sched.tEnd;
        runBatchVsScalar(net, tp, 4, 4, saTopologyName(topo));
    }
}

TEST(Batch, DualSaTestbenchMatchesScalarWithOddLaneCount)
{
    // Three of five lanes: odd widths exercise the non-AVX2 lane
    // loops and the lanes < maxLanes stride handling.
    const DualSaParams dp;
    SaSchedule sched;
    const Netlist net = buildDualSaTestbench(dp, sched);
    TranParams tp = defaultSaTran();
    tp.dt = 50e-12;
    tp.tstop = sched.tEnd;
    runBatchVsScalar(net, tp, 5, 3, "dual-sa");
}

TEST(Batch, SingleLaneMatchesScalarSimulator)
{
    SaParams p;
    SaSchedule sched;
    const Netlist net = buildSaTestbench(p, sched);
    TranParams tp = defaultSaTran();
    tp.dt = 50e-12;
    tp.tstop = sched.tEnd;
    runBatchVsScalar(net, tp, 1, 1, "single-lane");
}

TEST(Batch, PortableLanesMatchSimdLanesBitwise)
{
    SaParams p;
    SaSchedule sched;
    const Netlist net = buildSaTestbench(p, sched);
    TranParams tp = defaultSaTran();
    tp.dt = 50e-12;
    tp.tstop = sched.tEnd;
    {
        hifi::common::simd::ScopedForceScalar off;
        runBatchVsScalar(net, tp, 4, 4, "portable-batch");
    }
}

TEST(Batch, ForcedDenseFallbackLaneStaysBitwise)
{
    // A lane forced through the dense fallback must reproduce the
    // scalar Dense engine bit for bit, and must not perturb its
    // sparse-path neighbours.
    SaParams p;
    SaSchedule sched;
    const Netlist net = buildSaTestbench(p, sched);
    TranParams tp = defaultSaTran();
    tp.dt = 50e-12;
    tp.tstop = sched.tEnd;

    const size_t lanes = 4;
    BatchSimulator sim(net, lanes);
    std::vector<Netlist> patched(lanes, net);
    for (size_t l = 0; l < lanes; ++l) {
        hifi::common::Rng rng(7, l);
        for (size_t mi = 0; mi < net.mosfets().size(); ++mi) {
            const double delta = rng.gaussian(0.0, 0.03);
            sim.setVthDelta(l, mi, delta);
            patched[l].mosfet(mi).vthDelta = delta;
        }
    }
    sim.setForceDenseFallback(2, true);
    const std::vector<TranResult> got = sim.run(tp, lanes);

    for (size_t l = 0; l < lanes; ++l) {
        TranParams stp = tp;
        stp.solver =
            l == 2 ? LinearSolver::Dense : LinearSolver::Sparse;
        const TranResult ref = Simulator(patched[l]).run(stp);
        expectBitwiseEqual(got[l], ref,
                           "dense-fallback lane " +
                               std::to_string(l));
    }
}

TEST(Batch, LaneAndMosfetIndexValidation)
{
    SaParams p;
    SaSchedule sched;
    const Netlist net = buildSaTestbench(p, sched);
    EXPECT_THROW(BatchSimulator(net, 0), std::invalid_argument);
    BatchSimulator sim(net, 2);
    EXPECT_THROW(sim.setVthDelta(2, 0, 0.0), std::out_of_range);
    EXPECT_THROW(sim.setVthDelta(0, net.mosfets().size(), 0.0),
                 std::out_of_range);
    EXPECT_THROW(sim.setForceDenseFallback(2, true),
                 std::out_of_range);
    const TranParams tp = defaultSaTran();
    EXPECT_THROW(sim.run(tp, 0), std::invalid_argument);
    EXPECT_THROW(sim.run(tp, 3), std::invalid_argument);
}

TEST(Batch, SensingYieldIsLaneWidthInvariant)
{
    // 24 trials split into Monte-Carlo chunks of 16 + 8; lane widths
    // 3 and 5 leave remainders in both chunks, 8 divides neither
    // evenly either. All must reproduce the per-trial scalar sweep
    // exactly: same failure count, bitwise-identical mean signal.
    const SaParams sa;
    MismatchParams mc;
    mc.avtVnm = 9.0;
    mc.trials = 24;
    TranParams tran = defaultSaTran();
    tran.dt = 50e-12;

    tran.batchLanes = 1;
    const YieldResult ref = sensingYield(sa, mc, tran);

    for (const int lanes : {3, 5, 8}) {
        tran.batchLanes = lanes;
        const YieldResult got = sensingYield(sa, mc, tran);
        EXPECT_EQ(got.trials, ref.trials) << "lanes " << lanes;
        EXPECT_EQ(got.failures, ref.failures) << "lanes " << lanes;
        EXPECT_EQ(std::memcmp(&got.meanSignal, &ref.meanSignal,
                              sizeof(double)),
                  0)
            << "lanes " << lanes << ": meanSignal bits differ";
    }

    // And the portable (SIMD-off) batched path.
    {
        hifi::common::simd::ScopedForceScalar off;
        tran.batchLanes = 8;
        const YieldResult got = sensingYield(sa, mc, tran);
        EXPECT_EQ(got.failures, ref.failures);
        EXPECT_EQ(std::memcmp(&got.meanSignal, &ref.meanSignal,
                              sizeof(double)),
                  0);
    }
}

} // namespace
