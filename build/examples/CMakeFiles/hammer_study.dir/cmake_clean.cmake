file(REMOVE_RECURSE
  "CMakeFiles/hammer_study.dir/hammer_study.cpp.o"
  "CMakeFiles/hammer_study.dir/hammer_study.cpp.o.d"
  "hammer_study"
  "hammer_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hammer_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
