# Empty compiler generated dependencies file for hammer_study.
# This may be replaced when dependencies are built.
