file(REMOVE_RECURSE
  "CMakeFiles/dram_functional.dir/dram_functional.cpp.o"
  "CMakeFiles/dram_functional.dir/dram_functional.cpp.o.d"
  "dram_functional"
  "dram_functional.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dram_functional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
