# Empty dependencies file for dram_functional.
# This may be replaced when dependencies are built.
