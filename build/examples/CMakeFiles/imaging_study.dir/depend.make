# Empty dependencies file for imaging_study.
# This may be replaced when dependencies are built.
