file(REMOVE_RECURSE
  "CMakeFiles/imaging_study.dir/imaging_study.cpp.o"
  "CMakeFiles/imaging_study.dir/imaging_study.cpp.o.d"
  "imaging_study"
  "imaging_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imaging_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
