file(REMOVE_RECURSE
  "CMakeFiles/planar_views.dir/planar_views.cpp.o"
  "CMakeFiles/planar_views.dir/planar_views.cpp.o.d"
  "planar_views"
  "planar_views.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/planar_views.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
