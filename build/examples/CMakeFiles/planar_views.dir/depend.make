# Empty dependencies file for planar_views.
# This may be replaced when dependencies are built.
