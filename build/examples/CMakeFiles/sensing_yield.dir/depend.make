# Empty dependencies file for sensing_yield.
# This may be replaced when dependencies are built.
