file(REMOVE_RECURSE
  "CMakeFiles/sensing_yield.dir/sensing_yield.cpp.o"
  "CMakeFiles/sensing_yield.dir/sensing_yield.cpp.o.d"
  "sensing_yield"
  "sensing_yield.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensing_yield.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
