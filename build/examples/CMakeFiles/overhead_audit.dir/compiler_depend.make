# Empty compiler generated dependencies file for overhead_audit.
# This may be replaced when dependencies are built.
