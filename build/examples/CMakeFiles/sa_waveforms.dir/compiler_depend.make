# Empty compiler generated dependencies file for sa_waveforms.
# This may be replaced when dependencies are built.
