file(REMOVE_RECURSE
  "CMakeFiles/sa_waveforms.dir/sa_waveforms.cpp.o"
  "CMakeFiles/sa_waveforms.dir/sa_waveforms.cpp.o.d"
  "sa_waveforms"
  "sa_waveforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sa_waveforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
