file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_model_inaccuracy.dir/bench_fig12_model_inaccuracy.cc.o"
  "CMakeFiles/bench_fig12_model_inaccuracy.dir/bench_fig12_model_inaccuracy.cc.o.d"
  "bench_fig12_model_inaccuracy"
  "bench_fig12_model_inaccuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_model_inaccuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
