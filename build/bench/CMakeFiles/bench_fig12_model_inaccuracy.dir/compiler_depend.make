# Empty compiler generated dependencies file for bench_fig12_model_inaccuracy.
# This may be replaced when dependencies are built.
