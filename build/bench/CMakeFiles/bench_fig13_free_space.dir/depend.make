# Empty dependencies file for bench_fig13_free_space.
# This may be replaced when dependencies are built.
