# Empty dependencies file for bench_sec6d_outofspec.
# This may be replaced when dependencies are built.
