file(REMOVE_RECURSE
  "CMakeFiles/bench_sec6d_outofspec.dir/bench_sec6d_outofspec.cc.o"
  "CMakeFiles/bench_sec6d_outofspec.dir/bench_sec6d_outofspec.cc.o.d"
  "bench_sec6d_outofspec"
  "bench_sec6d_outofspec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec6d_outofspec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
