file(REMOVE_RECURSE
  "CMakeFiles/bench_costbenefit.dir/bench_costbenefit.cc.o"
  "CMakeFiles/bench_costbenefit.dir/bench_costbenefit.cc.o.d"
  "bench_costbenefit"
  "bench_costbenefit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_costbenefit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
