# Empty dependencies file for bench_costbenefit.
# This may be replaced when dependencies are built.
