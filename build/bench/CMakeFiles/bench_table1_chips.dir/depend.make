# Empty dependencies file for bench_table1_chips.
# This may be replaced when dependencies are built.
