file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_chips.dir/bench_table1_chips.cc.o"
  "CMakeFiles/bench_table1_chips.dir/bench_table1_chips.cc.o.d"
  "bench_table1_chips"
  "bench_table1_chips.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_chips.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
