# Empty dependencies file for bench_appendix_a_bitlines.
# This may be replaced when dependencies are built.
