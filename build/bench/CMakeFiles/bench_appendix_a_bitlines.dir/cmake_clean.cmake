file(REMOVE_RECURSE
  "CMakeFiles/bench_appendix_a_bitlines.dir/bench_appendix_a_bitlines.cc.o"
  "CMakeFiles/bench_appendix_a_bitlines.dir/bench_appendix_a_bitlines.cc.o.d"
  "bench_appendix_a_bitlines"
  "bench_appendix_a_bitlines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_appendix_a_bitlines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
