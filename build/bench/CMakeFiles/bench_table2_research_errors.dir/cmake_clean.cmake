file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_research_errors.dir/bench_table2_research_errors.cc.o"
  "CMakeFiles/bench_table2_research_errors.dir/bench_table2_research_errors.cc.o.d"
  "bench_table2_research_errors"
  "bench_table2_research_errors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_research_errors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
