# Empty dependencies file for bench_sec5_measurements.
# This may be replaced when dependencies are built.
