file(REMOVE_RECURSE
  "CMakeFiles/bench_sec5_measurements.dir/bench_sec5_measurements.cc.o"
  "CMakeFiles/bench_sec5_measurements.dir/bench_sec5_measurements.cc.o.d"
  "bench_sec5_measurements"
  "bench_sec5_measurements.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec5_measurements.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
