# Empty dependencies file for bench_fig2_classic_events.
# This may be replaced when dependencies are built.
