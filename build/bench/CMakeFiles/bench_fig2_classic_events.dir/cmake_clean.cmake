file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_classic_events.dir/bench_fig2_classic_events.cc.o"
  "CMakeFiles/bench_fig2_classic_events.dir/bench_fig2_classic_events.cc.o.d"
  "bench_fig2_classic_events"
  "bench_fig2_classic_events.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_classic_events.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
