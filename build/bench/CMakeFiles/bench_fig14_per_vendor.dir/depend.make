# Empty dependencies file for bench_fig14_per_vendor.
# This may be replaced when dependencies are built.
