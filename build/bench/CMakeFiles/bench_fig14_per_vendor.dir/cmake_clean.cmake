file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_per_vendor.dir/bench_fig14_per_vendor.cc.o"
  "CMakeFiles/bench_fig14_per_vendor.dir/bench_fig14_per_vendor.cc.o.d"
  "bench_fig14_per_vendor"
  "bench_fig14_per_vendor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_per_vendor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
