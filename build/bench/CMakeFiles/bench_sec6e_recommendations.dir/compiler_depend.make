# Empty compiler generated dependencies file for bench_sec6e_recommendations.
# This may be replaced when dependencies are built.
