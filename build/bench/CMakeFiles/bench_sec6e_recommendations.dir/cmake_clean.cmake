file(REMOVE_RECURSE
  "CMakeFiles/bench_sec6e_recommendations.dir/bench_sec6e_recommendations.cc.o"
  "CMakeFiles/bench_sec6e_recommendations.dir/bench_sec6e_recommendations.cc.o.d"
  "bench_sec6e_recommendations"
  "bench_sec6e_recommendations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec6e_recommendations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
