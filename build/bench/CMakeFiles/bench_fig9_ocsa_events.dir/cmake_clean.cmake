file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_ocsa_events.dir/bench_fig9_ocsa_events.cc.o"
  "CMakeFiles/bench_fig9_ocsa_events.dir/bench_fig9_ocsa_events.cc.o.d"
  "bench_fig9_ocsa_events"
  "bench_fig9_ocsa_events.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_ocsa_events.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
