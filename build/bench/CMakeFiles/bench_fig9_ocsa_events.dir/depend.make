# Empty dependencies file for bench_fig9_ocsa_events.
# This may be replaced when dependencies are built.
