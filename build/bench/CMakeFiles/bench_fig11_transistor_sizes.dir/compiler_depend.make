# Empty compiler generated dependencies file for bench_fig11_transistor_sizes.
# This may be replaced when dependencies are built.
