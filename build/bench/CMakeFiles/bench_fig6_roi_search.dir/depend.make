# Empty dependencies file for bench_fig6_roi_search.
# This may be replaced when dependencies are built.
