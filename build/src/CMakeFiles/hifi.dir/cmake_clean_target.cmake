file(REMOVE_RECURSE
  "libhifi.a"
)
