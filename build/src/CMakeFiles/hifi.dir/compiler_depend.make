# Empty compiler generated dependencies file for hifi.
# This may be replaced when dependencies are built.
