
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/latency_model.cc" "src/CMakeFiles/hifi.dir/arch/latency_model.cc.o" "gcc" "src/CMakeFiles/hifi.dir/arch/latency_model.cc.o.d"
  "/root/repo/src/circuit/dual_sa.cc" "src/CMakeFiles/hifi.dir/circuit/dual_sa.cc.o" "gcc" "src/CMakeFiles/hifi.dir/circuit/dual_sa.cc.o.d"
  "/root/repo/src/circuit/mismatch.cc" "src/CMakeFiles/hifi.dir/circuit/mismatch.cc.o" "gcc" "src/CMakeFiles/hifi.dir/circuit/mismatch.cc.o.d"
  "/root/repo/src/circuit/netlist.cc" "src/CMakeFiles/hifi.dir/circuit/netlist.cc.o" "gcc" "src/CMakeFiles/hifi.dir/circuit/netlist.cc.o.d"
  "/root/repo/src/circuit/sense_amp.cc" "src/CMakeFiles/hifi.dir/circuit/sense_amp.cc.o" "gcc" "src/CMakeFiles/hifi.dir/circuit/sense_amp.cc.o.d"
  "/root/repo/src/circuit/solver.cc" "src/CMakeFiles/hifi.dir/circuit/solver.cc.o" "gcc" "src/CMakeFiles/hifi.dir/circuit/solver.cc.o.d"
  "/root/repo/src/circuit/spice.cc" "src/CMakeFiles/hifi.dir/circuit/spice.cc.o" "gcc" "src/CMakeFiles/hifi.dir/circuit/spice.cc.o.d"
  "/root/repo/src/circuit/vcd.cc" "src/CMakeFiles/hifi.dir/circuit/vcd.cc.o" "gcc" "src/CMakeFiles/hifi.dir/circuit/vcd.cc.o.d"
  "/root/repo/src/circuit/waveform.cc" "src/CMakeFiles/hifi.dir/circuit/waveform.cc.o" "gcc" "src/CMakeFiles/hifi.dir/circuit/waveform.cc.o.d"
  "/root/repo/src/common/csv.cc" "src/CMakeFiles/hifi.dir/common/csv.cc.o" "gcc" "src/CMakeFiles/hifi.dir/common/csv.cc.o.d"
  "/root/repo/src/common/geometry.cc" "src/CMakeFiles/hifi.dir/common/geometry.cc.o" "gcc" "src/CMakeFiles/hifi.dir/common/geometry.cc.o.d"
  "/root/repo/src/common/log.cc" "src/CMakeFiles/hifi.dir/common/log.cc.o" "gcc" "src/CMakeFiles/hifi.dir/common/log.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/hifi.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/hifi.dir/common/rng.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/hifi.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/hifi.dir/common/stats.cc.o.d"
  "/root/repo/src/common/table.cc" "src/CMakeFiles/hifi.dir/common/table.cc.o" "gcc" "src/CMakeFiles/hifi.dir/common/table.cc.o.d"
  "/root/repo/src/core/pipeline.cc" "src/CMakeFiles/hifi.dir/core/pipeline.cc.o" "gcc" "src/CMakeFiles/hifi.dir/core/pipeline.cc.o.d"
  "/root/repo/src/core/study.cc" "src/CMakeFiles/hifi.dir/core/study.cc.o" "gcc" "src/CMakeFiles/hifi.dir/core/study.cc.o.d"
  "/root/repo/src/dram/bank.cc" "src/CMakeFiles/hifi.dir/dram/bank.cc.o" "gcc" "src/CMakeFiles/hifi.dir/dram/bank.cc.o.d"
  "/root/repo/src/dram/device.cc" "src/CMakeFiles/hifi.dir/dram/device.cc.o" "gcc" "src/CMakeFiles/hifi.dir/dram/device.cc.o.d"
  "/root/repo/src/dram/timings.cc" "src/CMakeFiles/hifi.dir/dram/timings.cc.o" "gcc" "src/CMakeFiles/hifi.dir/dram/timings.cc.o.d"
  "/root/repo/src/eval/bitline_ext.cc" "src/CMakeFiles/hifi.dir/eval/bitline_ext.cc.o" "gcc" "src/CMakeFiles/hifi.dir/eval/bitline_ext.cc.o.d"
  "/root/repo/src/eval/model_accuracy.cc" "src/CMakeFiles/hifi.dir/eval/model_accuracy.cc.o" "gcc" "src/CMakeFiles/hifi.dir/eval/model_accuracy.cc.o.d"
  "/root/repo/src/eval/overheads.cc" "src/CMakeFiles/hifi.dir/eval/overheads.cc.o" "gcc" "src/CMakeFiles/hifi.dir/eval/overheads.cc.o.d"
  "/root/repo/src/eval/recommendations.cc" "src/CMakeFiles/hifi.dir/eval/recommendations.cc.o" "gcc" "src/CMakeFiles/hifi.dir/eval/recommendations.cc.o.d"
  "/root/repo/src/eval/sensitivity.cc" "src/CMakeFiles/hifi.dir/eval/sensitivity.cc.o" "gcc" "src/CMakeFiles/hifi.dir/eval/sensitivity.cc.o.d"
  "/root/repo/src/fab/mat.cc" "src/CMakeFiles/hifi.dir/fab/mat.cc.o" "gcc" "src/CMakeFiles/hifi.dir/fab/mat.cc.o.d"
  "/root/repo/src/fab/materials.cc" "src/CMakeFiles/hifi.dir/fab/materials.cc.o" "gcc" "src/CMakeFiles/hifi.dir/fab/materials.cc.o.d"
  "/root/repo/src/fab/sa_region.cc" "src/CMakeFiles/hifi.dir/fab/sa_region.cc.o" "gcc" "src/CMakeFiles/hifi.dir/fab/sa_region.cc.o.d"
  "/root/repo/src/fab/voxelizer.cc" "src/CMakeFiles/hifi.dir/fab/voxelizer.cc.o" "gcc" "src/CMakeFiles/hifi.dir/fab/voxelizer.cc.o.d"
  "/root/repo/src/image/denoise.cc" "src/CMakeFiles/hifi.dir/image/denoise.cc.o" "gcc" "src/CMakeFiles/hifi.dir/image/denoise.cc.o.d"
  "/root/repo/src/image/image2d.cc" "src/CMakeFiles/hifi.dir/image/image2d.cc.o" "gcc" "src/CMakeFiles/hifi.dir/image/image2d.cc.o.d"
  "/root/repo/src/image/noise.cc" "src/CMakeFiles/hifi.dir/image/noise.cc.o" "gcc" "src/CMakeFiles/hifi.dir/image/noise.cc.o.d"
  "/root/repo/src/image/pgm.cc" "src/CMakeFiles/hifi.dir/image/pgm.cc.o" "gcc" "src/CMakeFiles/hifi.dir/image/pgm.cc.o.d"
  "/root/repo/src/image/registration.cc" "src/CMakeFiles/hifi.dir/image/registration.cc.o" "gcc" "src/CMakeFiles/hifi.dir/image/registration.cc.o.d"
  "/root/repo/src/image/volume3d.cc" "src/CMakeFiles/hifi.dir/image/volume3d.cc.o" "gcc" "src/CMakeFiles/hifi.dir/image/volume3d.cc.o.d"
  "/root/repo/src/layout/cell.cc" "src/CMakeFiles/hifi.dir/layout/cell.cc.o" "gcc" "src/CMakeFiles/hifi.dir/layout/cell.cc.o.d"
  "/root/repo/src/layout/design_rules.cc" "src/CMakeFiles/hifi.dir/layout/design_rules.cc.o" "gcc" "src/CMakeFiles/hifi.dir/layout/design_rules.cc.o.d"
  "/root/repo/src/layout/gdsii.cc" "src/CMakeFiles/hifi.dir/layout/gdsii.cc.o" "gcc" "src/CMakeFiles/hifi.dir/layout/gdsii.cc.o.d"
  "/root/repo/src/layout/layer.cc" "src/CMakeFiles/hifi.dir/layout/layer.cc.o" "gcc" "src/CMakeFiles/hifi.dir/layout/layer.cc.o.d"
  "/root/repo/src/models/chip_data.cc" "src/CMakeFiles/hifi.dir/models/chip_data.cc.o" "gcc" "src/CMakeFiles/hifi.dir/models/chip_data.cc.o.d"
  "/root/repo/src/models/export.cc" "src/CMakeFiles/hifi.dir/models/export.cc.o" "gcc" "src/CMakeFiles/hifi.dir/models/export.cc.o.d"
  "/root/repo/src/models/papers.cc" "src/CMakeFiles/hifi.dir/models/papers.cc.o" "gcc" "src/CMakeFiles/hifi.dir/models/papers.cc.o.d"
  "/root/repo/src/models/process.cc" "src/CMakeFiles/hifi.dir/models/process.cc.o" "gcc" "src/CMakeFiles/hifi.dir/models/process.cc.o.d"
  "/root/repo/src/models/public_models.cc" "src/CMakeFiles/hifi.dir/models/public_models.cc.o" "gcc" "src/CMakeFiles/hifi.dir/models/public_models.cc.o.d"
  "/root/repo/src/re/analyze.cc" "src/CMakeFiles/hifi.dir/re/analyze.cc.o" "gcc" "src/CMakeFiles/hifi.dir/re/analyze.cc.o.d"
  "/root/repo/src/re/gds_pipeline.cc" "src/CMakeFiles/hifi.dir/re/gds_pipeline.cc.o" "gcc" "src/CMakeFiles/hifi.dir/re/gds_pipeline.cc.o.d"
  "/root/repo/src/re/layout_export.cc" "src/CMakeFiles/hifi.dir/re/layout_export.cc.o" "gcc" "src/CMakeFiles/hifi.dir/re/layout_export.cc.o.d"
  "/root/repo/src/re/mat_analyze.cc" "src/CMakeFiles/hifi.dir/re/mat_analyze.cc.o" "gcc" "src/CMakeFiles/hifi.dir/re/mat_analyze.cc.o.d"
  "/root/repo/src/re/measure.cc" "src/CMakeFiles/hifi.dir/re/measure.cc.o" "gcc" "src/CMakeFiles/hifi.dir/re/measure.cc.o.d"
  "/root/repo/src/re/netlist_build.cc" "src/CMakeFiles/hifi.dir/re/netlist_build.cc.o" "gcc" "src/CMakeFiles/hifi.dir/re/netlist_build.cc.o.d"
  "/root/repo/src/re/segmentation.cc" "src/CMakeFiles/hifi.dir/re/segmentation.cc.o" "gcc" "src/CMakeFiles/hifi.dir/re/segmentation.cc.o.d"
  "/root/repo/src/re/topology_match.cc" "src/CMakeFiles/hifi.dir/re/topology_match.cc.o" "gcc" "src/CMakeFiles/hifi.dir/re/topology_match.cc.o.d"
  "/root/repo/src/scope/fib.cc" "src/CMakeFiles/hifi.dir/scope/fib.cc.o" "gcc" "src/CMakeFiles/hifi.dir/scope/fib.cc.o.d"
  "/root/repo/src/scope/postprocess.cc" "src/CMakeFiles/hifi.dir/scope/postprocess.cc.o" "gcc" "src/CMakeFiles/hifi.dir/scope/postprocess.cc.o.d"
  "/root/repo/src/scope/prep.cc" "src/CMakeFiles/hifi.dir/scope/prep.cc.o" "gcc" "src/CMakeFiles/hifi.dir/scope/prep.cc.o.d"
  "/root/repo/src/scope/roi_search.cc" "src/CMakeFiles/hifi.dir/scope/roi_search.cc.o" "gcc" "src/CMakeFiles/hifi.dir/scope/roi_search.cc.o.d"
  "/root/repo/src/scope/sem.cc" "src/CMakeFiles/hifi.dir/scope/sem.cc.o" "gcc" "src/CMakeFiles/hifi.dir/scope/sem.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
