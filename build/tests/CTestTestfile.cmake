# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_arch "/root/repo/build/tests/test_arch")
set_tests_properties(test_arch PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_circuit "/root/repo/build/tests/test_circuit")
set_tests_properties(test_circuit PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_common "/root/repo/build/tests/test_common")
set_tests_properties(test_common PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_dram "/root/repo/build/tests/test_dram")
set_tests_properties(test_dram PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_fab_scope "/root/repo/build/tests/test_fab_scope")
set_tests_properties(test_fab_scope PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_image "/root/repo/build/tests/test_image")
set_tests_properties(test_image PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_layout "/root/repo/build/tests/test_layout")
set_tests_properties(test_layout PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_models_eval "/root/repo/build/tests/test_models_eval")
set_tests_properties(test_models_eval PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_pipeline "/root/repo/build/tests/test_pipeline")
set_tests_properties(test_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_re "/root/repo/build/tests/test_re")
set_tests_properties(test_re PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;0;")
