file(REMOVE_RECURSE
  "CMakeFiles/test_models_eval.dir/test_models_eval.cc.o"
  "CMakeFiles/test_models_eval.dir/test_models_eval.cc.o.d"
  "test_models_eval"
  "test_models_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_models_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
