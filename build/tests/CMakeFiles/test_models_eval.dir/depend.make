# Empty dependencies file for test_models_eval.
# This may be replaced when dependencies are built.
