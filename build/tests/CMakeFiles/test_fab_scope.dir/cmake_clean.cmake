file(REMOVE_RECURSE
  "CMakeFiles/test_fab_scope.dir/test_fab_scope.cc.o"
  "CMakeFiles/test_fab_scope.dir/test_fab_scope.cc.o.d"
  "test_fab_scope"
  "test_fab_scope.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fab_scope.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
