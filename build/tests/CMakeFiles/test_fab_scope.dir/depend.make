# Empty dependencies file for test_fab_scope.
# This may be replaced when dependencies are built.
