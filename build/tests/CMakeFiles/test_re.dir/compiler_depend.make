# Empty compiler generated dependencies file for test_re.
# This may be replaced when dependencies are built.
