file(REMOVE_RECURSE
  "CMakeFiles/test_re.dir/test_re.cc.o"
  "CMakeFiles/test_re.dir/test_re.cc.o.d"
  "test_re"
  "test_re.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_re.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
