/**
 * @file
 * CI gate for telemetry artifacts: validates that a Chrome
 * trace_event JSON file produced by the pipeline is well-formed
 * (parseable, "X" events with the mandatory fields, per-thread spans
 * properly nested) and covers the expected stages.
 *
 *   hifi_trace_check <trace.json> [--min-names N]
 *                    [--require-prefixes a,b,c]
 *
 * Exit status: 0 when the trace passes, 1 on any violation (the
 * first one is printed), 2 on usage / I/O errors.
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/telemetry.hh"

namespace
{

std::vector<std::string>
splitCommas(const std::string &list)
{
    std::vector<std::string> out;
    std::string item;
    std::stringstream ss(list);
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string path;
    hifi::telemetry::TraceCheckOptions options;

    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--min-names") == 0 && i + 1 < argc) {
            options.minDistinctNames =
                static_cast<size_t>(std::stoul(argv[++i]));
        } else if (std::strcmp(argv[i], "--require-prefixes") == 0 &&
                   i + 1 < argc) {
            options.requiredPrefixes = splitCommas(argv[++i]);
        } else if (argv[i][0] != '-' && path.empty()) {
            path = argv[i];
        } else {
            std::cerr << "usage: " << argv[0]
                      << " <trace.json> [--min-names N]"
                         " [--require-prefixes a,b,c]\n";
            return 2;
        }
    }
    if (path.empty()) {
        std::cerr << "hifi_trace_check: no trace file given\n";
        return 2;
    }

    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::cerr << "hifi_trace_check: cannot open " << path << "\n";
        return 2;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();

    std::string error;
    hifi::telemetry::TraceStats stats;
    if (!hifi::telemetry::validateChromeTrace(buffer.str(), options,
                                              &error, &stats)) {
        std::cerr << "hifi_trace_check: " << path << ": " << error
                  << "\n";
        return 1;
    }

    std::cout << path << ": OK (" << stats.events << " events, "
              << stats.distinctNames << " distinct names:";
    for (const auto &name : stats.names)
        std::cout << " " << name;
    std::cout << ")\n";
    return 0;
}
