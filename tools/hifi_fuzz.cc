/**
 * @file
 * Property-based scenario fuzzer for the virtual fab / RE pipeline
 * (core/fuzz.hh).
 *
 *   hifi_fuzz [--count N] [--seed S] [--budget-sec T]
 *             [--full-every N] [--threads N] [--smoke]
 *             [--replay "chip=B5 pairs=2 ... seed=7"]
 *             [--corpus FILE]
 *
 * Modes:
 *  - default / --smoke: sample scenarios from --seed upward and run
 *    them until --count scenarios ran or the time budget is spent
 *    (--smoke presets a CI-friendly count=500 / budget=60 s);
 *  - --replay: run exactly one serialized scenario and report it;
 *  - --corpus: replay every non-comment line of a corpus file.
 *
 * On the first failing scenario the fuzzer shrinks it to a minimal
 * reproducer and prints a single copy-pastable line:
 *
 *   REPRODUCER: chip=B5 pairs=2 sas=1 corner=typical ... seed=41
 *
 * Exit status: 0 all scenarios passed, 1 on any violation, 2 on
 * usage / I/O errors.
 */

#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/fuzz.hh"

namespace
{

using hifi::core::ScenarioParams;
using hifi::core::ScenarioResult;

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

void
printViolations(const ScenarioResult &result)
{
    std::cout << "FAIL: "
              << hifi::core::serializeScenario(result.params) << "\n";
    for (const auto &v : result.violations)
        std::cout << "  violation: " << v << "\n";
}

/// Run one scenario; on failure, shrink and print the reproducer.
bool
runAndReport(const ScenarioParams &params, size_t threads)
{
    const ScenarioResult result =
        hifi::core::runScenario(params, threads);
    if (result.passed())
        return true;

    printViolations(result);
    std::cout << "shrinking...\n";
    const ScenarioParams minimal = hifi::core::shrinkScenario(
        params, [threads](const ScenarioParams &c) {
            return !hifi::core::runScenario(c, threads).passed();
        });
    const ScenarioResult small =
        hifi::core::runScenario(minimal, threads);
    for (const auto &v : small.violations)
        std::cout << "  minimal violation: " << v << "\n";
    std::cout << "REPRODUCER: "
              << hifi::core::serializeScenario(minimal) << "\n";
    return false;
}

int
usage(const char *argv0)
{
    std::cerr
        << "usage: " << argv0
        << " [--count N] [--seed S] [--budget-sec T]\n"
           "       [--full-every N] [--threads N] [--smoke]\n"
           "       [--replay LINE] [--corpus FILE]\n";
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    size_t count = 200;
    uint64_t seed = 1;
    double budget_sec = 0.0; // 0 = unlimited
    size_t full_every = 0;   // 0 = sampler decides
    size_t threads = 0;
    std::string replay;
    std::string corpus;

    for (int i = 1; i < argc; ++i) {
        const auto arg = [&](const char *name) {
            return std::strcmp(argv[i], name) == 0 && i + 1 < argc;
        };
        if (arg("--count")) {
            count = std::stoul(argv[++i]);
        } else if (arg("--seed")) {
            seed = std::stoull(argv[++i]);
        } else if (arg("--budget-sec")) {
            budget_sec = std::stod(argv[++i]);
        } else if (arg("--full-every")) {
            full_every = std::stoul(argv[++i]);
        } else if (arg("--threads")) {
            threads = std::stoul(argv[++i]);
        } else if (std::strcmp(argv[i], "--smoke") == 0) {
            // CI preset: 500 scenarios inside a ~60 s box.  The full
            // FIB/SEM tier costs ~10x a direct scenario, so pin it to
            // every 100th scenario instead of the sampler's ~4% —
            // the budget then comfortably covers the full count.
            count = 500;
            budget_sec = 60.0;
            full_every = 100;
        } else if (arg("--replay")) {
            replay = argv[++i];
        } else if (arg("--corpus")) {
            corpus = argv[++i];
        } else {
            return usage(argv[0]);
        }
    }

    // ---- Replay one serialized scenario ---------------------------
    if (!replay.empty()) {
        auto parsed = hifi::core::parseScenario(replay);
        if (!parsed.ok()) {
            std::cerr << parsed.error().message << "\n";
            return 2;
        }
        if (!runAndReport(parsed.value(), threads))
            return 1;
        std::cout << "PASS: " << replay << "\n";
        return 0;
    }

    // ---- Replay a corpus file -------------------------------------
    if (!corpus.empty()) {
        std::ifstream in(corpus);
        if (!in) {
            std::cerr << "cannot open corpus file '" << corpus
                      << "'\n";
            return 2;
        }
        size_t ran = 0, failed = 0;
        std::string line;
        while (std::getline(in, line)) {
            if (line.empty() || line[0] == '#')
                continue;
            auto parsed = hifi::core::parseScenario(line);
            if (!parsed.ok()) {
                std::cerr << parsed.error().message << "\n";
                return 2;
            }
            ++ran;
            if (!runAndReport(parsed.value(), threads))
                ++failed;
        }
        std::cout << "corpus: " << ran - failed << "/" << ran
                  << " scenarios passed\n";
        return failed ? 1 : 0;
    }

    // ---- Random fuzzing -------------------------------------------
    const auto t0 = std::chrono::steady_clock::now();
    size_t ran = 0, full_runs = 0;
    for (uint64_t s = seed; ran < count; ++s) {
        if (budget_sec > 0.0 && secondsSince(t0) > budget_sec)
            break;
        ScenarioParams params = hifi::core::sampleScenario(s);
        if (full_every > 0)
            params.fullPipeline = (ran % full_every) == 0;
        if (params.fullPipeline)
            ++full_runs;
        if (!runAndReport(params, threads)) {
            std::cout << ran << " scenario(s) passed before the "
                      << "failure\n";
            return 1;
        }
        ++ran;
        if (ran % 100 == 0)
            std::cout << "  " << ran << " scenarios, "
                      << secondsSince(t0) << " s\n";
    }

    std::cout << "fuzz: " << ran << " scenarios passed (" << full_runs
              << " full-pipeline) in " << secondsSince(t0) << " s\n";
    if (budget_sec > 0.0 && ran < count)
        std::cout << "note: time budget hit before --count="
                  << count << "\n";
    return 0;
}
