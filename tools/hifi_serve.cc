/**
 * @file
 * Campaign-service runner and chaos harness (service/campaign.hh).
 *
 *   hifi_serve [--jobs N] [--workers N] [--chips A4,B5,...]
 *              [--seed-namespace S] [--pairs N] [--faults]
 *              [--checkpoint-dir DIR] [--chaos] [--kill-prob P]
 *              [--stall-prob P] [--stage-timeout-sec T]
 *              [--max-queue N] [--memory-budget MIB]
 *              [--quick] [--no-verify]
 *
 * --memory-budget runs every job out-of-core: acquisition and
 * assembly stream through a bounded tile store spilled next to the
 * checkpoints, and the verifier re-runs the job in RAM to prove the
 * budgeted report is bit-identical.
 *
 * Submits N pipeline jobs to a CampaignService and drains it.  With
 * --chaos, deterministic crash injection aborts jobs at stage
 * boundaries; the service retries them from their checkpoints.  For
 * every completed job the harness re-runs the same configuration
 * directly through runPipeline and asserts the report digests match
 * — i.e. a job that crashed, resumed and retried produced the exact
 * bits an undisturbed run produces (skip with --no-verify).
 *
 * --quick presets a CI-friendly soak: 4 jobs, 2 workers, chaos kills
 * at 50%, per-job wait budget 120 s.
 *
 * Exit status: 0 when every job completed (bit-identical when
 * verified) or failed with a typed terminal error and nothing hung;
 * 1 on a digest mismatch, hang, or untyped failure; 2 on usage
 * errors.
 */

#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "service/campaign.hh"

namespace
{

using hifi::core::PipelineConfig;
using hifi::service::CampaignService;
using hifi::service::JobState;
using hifi::service::ServiceConfig;

struct Options
{
    size_t jobs = 8;
    size_t workers = 2;
    std::vector<std::string> chips = {"B5", "A4", "C4"};
    uint64_t seedNamespace = 0x5e21ceull;
    size_t pairs = 2;
    bool faults = true;
    std::string checkpointDir = "hifi_serve_ckpt";
    bool chaos = false;
    double killProb = 0.3;
    double stallProb = 0.0;
    double stageTimeoutSec = 0.0;
    size_t maxQueue = 64;
    bool verify = true;
    double waitBudgetSec = 120.0;

    /// Per-job PipelineConfig::memoryBudget in MiB (0 = in-RAM).
    size_t memoryBudgetMib = 0;
};

std::vector<std::string>
splitList(const std::string &s)
{
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

int
usage()
{
    std::cerr
        << "usage: hifi_serve [--jobs N] [--workers N] [--chips "
           "A4,B5] [--seed-namespace S] [--pairs N] [--faults]\n"
           "                  [--checkpoint-dir DIR] [--chaos] "
           "[--kill-prob P] [--stall-prob P]\n"
           "                  [--stage-timeout-sec T] [--max-queue "
           "N] [--memory-budget MIB]\n"
           "                  [--quick] [--no-verify]\n";
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--jobs") {
            const char *v = value();
            if (!v)
                return usage();
            opt.jobs = std::stoul(v);
        } else if (arg == "--workers") {
            const char *v = value();
            if (!v)
                return usage();
            opt.workers = std::stoul(v);
        } else if (arg == "--chips") {
            const char *v = value();
            if (!v)
                return usage();
            opt.chips = splitList(v);
        } else if (arg == "--seed-namespace") {
            const char *v = value();
            if (!v)
                return usage();
            opt.seedNamespace = std::stoull(v);
        } else if (arg == "--pairs") {
            const char *v = value();
            if (!v)
                return usage();
            opt.pairs = std::stoul(v);
        } else if (arg == "--faults") {
            opt.faults = true;
        } else if (arg == "--no-faults") {
            opt.faults = false;
        } else if (arg == "--checkpoint-dir") {
            const char *v = value();
            if (!v)
                return usage();
            opt.checkpointDir = v;
        } else if (arg == "--chaos") {
            opt.chaos = true;
        } else if (arg == "--kill-prob") {
            const char *v = value();
            if (!v)
                return usage();
            opt.killProb = std::stod(v);
        } else if (arg == "--stall-prob") {
            const char *v = value();
            if (!v)
                return usage();
            opt.stallProb = std::stod(v);
        } else if (arg == "--stage-timeout-sec") {
            const char *v = value();
            if (!v)
                return usage();
            opt.stageTimeoutSec = std::stod(v);
        } else if (arg == "--max-queue") {
            const char *v = value();
            if (!v)
                return usage();
            opt.maxQueue = std::stoul(v);
        } else if (arg == "--memory-budget") {
            const char *v = value();
            if (!v)
                return usage();
            opt.memoryBudgetMib = std::stoul(v);
        } else if (arg == "--quick") {
            opt.jobs = 4;
            opt.workers = 2;
            opt.chaos = true;
            opt.killProb = 0.5;
        } else if (arg == "--no-verify") {
            opt.verify = false;
        } else {
            std::cerr << "unknown argument: " << arg << "\n";
            return usage();
        }
    }
    if (opt.chips.empty() || opt.jobs == 0)
        return usage();

    ServiceConfig cfg;
    cfg.workers = opt.workers;
    cfg.maxQueueDepth = opt.maxQueue;
    cfg.blockWhenFull = true;
    cfg.checkpointDir = opt.checkpointDir;
    cfg.seedNamespace = opt.seedNamespace;
    cfg.stageTimeoutSec = opt.stageTimeoutSec;
    cfg.cleanFrameCacheCapacity = 8;
    cfg.chaos.enabled = opt.chaos;
    cfg.chaos.killProbability = opt.chaos ? opt.killProb : 0.0;
    cfg.chaos.stallProbability = opt.chaos ? opt.stallProb : 0.0;
    // Give chaos kills room to succeed eventually: every stage that
    // completes is checkpointed, so maxAttempts bounds the number of
    // *boundary* crashes survived, not redone work.
    cfg.retry.maxAttempts = 8;
    cfg.retry.backoffBaseMs = 1.0;

    CampaignService service(cfg);

    std::vector<std::pair<uint64_t, PipelineConfig>> submitted;
    for (size_t i = 0; i < opt.jobs; ++i) {
        PipelineConfig pc;
        pc.chipId = opt.chips[i % opt.chips.size()];
        pc.pairs = opt.pairs;
        pc.faults.enabled = opt.faults;
        if (opt.memoryBudgetMib) {
            // Budgeted jobs stream their volumes through a tile
            // store spilled next to the checkpoints; the verify
            // re-run below proves the report is still bit-identical
            // to the unbudgeted in-RAM pipeline.
            pc.memoryBudget = opt.memoryBudgetMib << 20;
            pc.spillDir = opt.checkpointDir + "/spill-" +
                std::to_string(i);
        }
        const auto id = service.submit(
            "soak-" + std::to_string(i), pc);
        if (!id.ok()) {
            std::cerr << "submit failed: " << id.error().message
                      << "\n";
            return 1;
        }
        submitted.emplace_back(id.value(), pc);
    }

    bool ok = true;
    size_t completed = 0, failed = 0;
    for (const auto &[id, submittedConfig] : submitted) {
        if (!service.wait(id, opt.waitBudgetSec)) {
            std::cerr << "HUNG: job " << id
                      << " did not settle within "
                      << opt.waitBudgetSec << " s\n";
            ok = false;
            continue;
        }
        const auto st = service.status(id);
        if (st.state == JobState::Completed) {
            ++completed;
            std::cout << "job " << st.name << ": completed, seed "
                      << st.effectiveSeed << ", attempts "
                      << st.attempts << ", resumes " << st.resumes
                      << ", chaos kills " << st.chaosKills
                      << ", digest " << std::hex << st.reportDigest
                      << std::dec << "\n";
            if (opt.verify) {
                PipelineConfig pc = submittedConfig;
                pc.seed = st.effectiveSeed;
                // Verify budgeted jobs against the unbudgeted
                // in-RAM pipeline: the digests must still agree.
                pc.memoryBudget = 0;
                pc.spillDir.clear();
                const auto direct =
                    hifi::core::runPipelineChecked(pc);
                if (!direct.ok() ||
                    hifi::core::reportDigest(direct.value()) !=
                        st.reportDigest) {
                    std::cerr << "MISMATCH: job " << st.name
                              << " digest differs from the direct "
                                 "run\n";
                    ok = false;
                }
            }
        } else if (st.state == JobState::Failed && st.error) {
            ++failed;
            std::cout << "job " << st.name
                      << ": typed terminal error ("
                      << hifi::common::errorCodeName(
                             st.error->code)
                      << "): " << st.error->message << "\n";
        } else {
            std::cerr << "job " << st.name << ": unexpected state "
                      << hifi::service::jobStateName(st.state)
                      << "\n";
            ok = false;
        }
    }

    std::cout << "health: " << service.healthJson() << "\n";
    std::cout << completed << " completed, " << failed
              << " typed failures, " << submitted.size()
              << " jobs\n";
    return ok ? 0 : 1;
}
